// The video recording use case of paper Fig. 1, as an execution-memory
// traffic model. Each processing stage contributes a read volume and a write
// volume per frame (the paper's Table I tabulates their sum per stage); the
// totals give the data memory load per frame / per second / in MB/s.
//
// Derivation notes (see DESIGN.md Section 4): the sensor image carries a 20 %
// stabilization border per dimension (1.2W x 1.2H); Bayer and YUV422 use
// 16 bits/pixel, encoder frames 12 bits/pixel (YUV420), display RGB888
// 24 bits/pixel; the encoder's reference traffic is 6 x N x #reference-frames
// (implementation-dependent constant six, Section II); DisplayCtrl refreshes
// a WVGA display at 60 Hz regardless of capture format.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "video/formats.hpp"
#include "video/h264_levels.hpp"

namespace mcm::video {

enum class StageId : std::uint8_t {
  kCameraIf,
  kPreprocess,
  kBayerToYuv,
  kStabilization,
  kPostProcDigizoom,
  kScalingToDisplay,
  kDisplayCtrl,
  kVideoEncoder,
  kMultiplex,
  kMemoryCard,
  kAudioCapture,
};

[[nodiscard]] std::string_view to_string(StageId id);

struct StageTraffic {
  StageId id;
  std::string_view name;
  double read_bits = 0;   // per frame
  double write_bits = 0;  // per frame
  bool image_processing = false;  // Table I groups stages into two parts

  [[nodiscard]] double total_bits() const { return read_bits + write_bits; }
  [[nodiscard]] double total_mbits() const { return total_bits() / 1e6; }
};

struct UseCaseParams {
  H264Level level = H264Level::k31;
  double digizoom = 1.0;              // z in Fig. 1
  double stabilization_border = 0.2;  // 20 % per dimension
  double audio_mbps = 0.256;          // multiplexed audio stream
  double encoder_ref_factor = 6.0;    // paper's implementation-dependent six
  RefFramePolicy ref_policy = RefFramePolicy::kCalibrated;
  Resolution display = kWvga;
  double display_refresh_hz = 60.0;
};

class UseCaseModel {
 public:
  explicit UseCaseModel(UseCaseParams params);

  [[nodiscard]] const UseCaseParams& params() const { return params_; }
  [[nodiscard]] const LevelSpec& level() const { return level_; }
  [[nodiscard]] std::uint32_t ref_frames() const { return ref_frames_; }

  /// Per-stage traffic for one frame, in Fig. 1 order.
  [[nodiscard]] const std::vector<StageTraffic>& stages() const { return stages_; }

  [[nodiscard]] double image_processing_bits_per_frame() const;
  [[nodiscard]] double video_coding_bits_per_frame() const;
  [[nodiscard]] double total_bits_per_frame() const;
  [[nodiscard]] double total_bits_per_second() const {
    return total_bits_per_frame() * level_.fps;
  }
  /// The Table I bottom row: data memory load in (decimal) MB/s.
  [[nodiscard]] double total_mb_per_second() const {
    return total_bits_per_second() / 8e6;
  }
  [[nodiscard]] double total_bytes_per_frame() const {
    return total_bits_per_frame() / 8.0;
  }

  [[nodiscard]] Time frame_period() const {
    return Time::from_seconds(1.0 / level_.fps);
  }

 private:
  UseCaseParams params_;
  LevelSpec level_;
  std::uint32_t ref_frames_;
  std::vector<StageTraffic> stages_;
};

}  // namespace mcm::video
