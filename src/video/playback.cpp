#include "video/playback.hpp"

namespace mcm::video {

std::string_view to_string(PlaybackStageId id) {
  switch (id) {
    case PlaybackStageId::kMemoryCard: return "Memory card";
    case PlaybackStageId::kDemultiplex: return "Demultiplex";
    case PlaybackStageId::kVideoDecoder: return "Video decoder";
    case PlaybackStageId::kAudioDecoder: return "Audio decoder";
    case PlaybackStageId::kPostProcess: return "Post process";
    case PlaybackStageId::kScalingToDisplay: return "Scaling to display";
    case PlaybackStageId::kDisplayCtrl: return "DisplayCtrl";
  }
  return "?";
}

PlaybackModel::PlaybackModel(PlaybackParams params)
    : params_(params), level_(level_spec(params.level)) {
  const double n = static_cast<double>(level_.resolution.pixels());
  const double fps = level_.fps;
  const double v_bits = level_.max_bitrate_mbps * 1e6 / fps;
  const double a_bits = params_.audio_mbps * 1e6 / fps;
  const double wvga_rgb = static_cast<double>(params_.display.pixels()) *
                          bits_per_pixel(PixelFormat::kRgb888);
  const double b12 = bits_per_pixel(PixelFormat::kYuv420);
  const double b16 = bits_per_pixel(PixelFormat::kYuv422);

  stages_ = {
      {PlaybackStageId::kMemoryCard, to_string(PlaybackStageId::kMemoryCard),
       /*read=*/0.0, /*write=*/v_bits + a_bits},  // card DMA into memory
      {PlaybackStageId::kDemultiplex, to_string(PlaybackStageId::kDemultiplex),
       v_bits + a_bits, v_bits + a_bits},
      // Decoder: bitstream in, one motion-compensated reference read per
      // block (with interpolation overlap), reconstructed frame out.
      {PlaybackStageId::kVideoDecoder, to_string(PlaybackStageId::kVideoDecoder),
       v_bits + params_.mc_read_factor * b12 * n, b12 * n},
      {PlaybackStageId::kAudioDecoder, to_string(PlaybackStageId::kAudioDecoder),
       a_bits, a_bits},
      // Display path: read the decoded picture, convert/scale, scan out.
      {PlaybackStageId::kPostProcess, to_string(PlaybackStageId::kPostProcess),
       b12 * n, b16 * n},
      {PlaybackStageId::kScalingToDisplay,
       to_string(PlaybackStageId::kScalingToDisplay), b16 * n, wvga_rgb},
      {PlaybackStageId::kDisplayCtrl, to_string(PlaybackStageId::kDisplayCtrl),
       wvga_rgb * params_.display_refresh_hz / fps, 0.0},
  };
}

double PlaybackModel::total_bits_per_frame() const {
  double bits = 0;
  for (const auto& s : stages_) bits += s.total_bits();
  return bits;
}

}  // namespace mcm::video
