// Video playback (decode) chain: memory card -> demultiplex -> H.264 decode
// (motion compensation + reconstruction) -> scaling -> display. The
// companion workload of the paper's recording use case - the introduction
// motivates devices that both record and play back. Decoding has no motion
// *search*, so its execution-memory load is an order of magnitude below
// recording; the model quantifies that asymmetry with the same conventions
// as UseCaseModel (per-frame read/write bits per stage).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "video/h264_levels.hpp"
#include "video/usecase.hpp"

namespace mcm::video {

enum class PlaybackStageId : std::uint8_t {
  kMemoryCard,    // read the multiplexed stream from removable media buffer
  kDemultiplex,   // split into video + audio elementary streams
  kVideoDecoder,  // bitstream read, motion compensation, reconstruction
  kAudioDecoder,
  kPostProcess,   // deblock/convert for display
  kScalingToDisplay,
  kDisplayCtrl,
};

[[nodiscard]] std::string_view to_string(PlaybackStageId id);

struct PlaybackStageTraffic {
  PlaybackStageId id;
  std::string_view name;
  double read_bits = 0;   // per frame
  double write_bits = 0;  // per frame

  [[nodiscard]] double total_bits() const { return read_bits + write_bits; }
};

struct PlaybackParams {
  H264Level level = H264Level::k40;
  double audio_mbps = 0.256;

  /// Motion-compensation read amplification per pixel: each predicted block
  /// reads its reference area once, with interpolation overlap between
  /// neighbouring blocks (a (16+5)^2 / 16^2 = ~1.7x factor for 6-tap
  /// half-pel filters). Contrast with the encoder's search factor of 6.
  double mc_read_factor = 1.7;

  Resolution display = kWvga;
  double display_refresh_hz = 60.0;
};

class PlaybackModel {
 public:
  explicit PlaybackModel(PlaybackParams params);

  [[nodiscard]] const PlaybackParams& params() const { return params_; }
  [[nodiscard]] const LevelSpec& level() const { return level_; }
  [[nodiscard]] const std::vector<PlaybackStageTraffic>& stages() const {
    return stages_;
  }

  [[nodiscard]] double total_bits_per_frame() const;
  [[nodiscard]] double total_bits_per_second() const {
    return total_bits_per_frame() * level_.fps;
  }
  [[nodiscard]] double total_mb_per_second() const {
    return total_bits_per_second() / 8e6;
  }
  [[nodiscard]] Time frame_period() const {
    return Time::from_seconds(1.0 / level_.fps);
  }

 private:
  PlaybackParams params_;
  LevelSpec level_;
  std::vector<PlaybackStageTraffic> stages_;
};

}  // namespace mcm::video
