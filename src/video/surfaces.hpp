// Surface layout: places every buffer of the Fig. 1 use case in the global
// (channel-interleaved) byte address space. Surfaces are aligned so each
// starts on a full interleave stripe, and the whole working set must fit the
// configured memory capacity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "video/usecase.hpp"

namespace mcm::video {

struct Surface {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] std::uint64_t end() const { return base + bytes; }
};

/// Buffers used by the recording chain.
enum class SurfaceId : std::uint8_t {
  kBayerCapture,   // sensor output (with stabilization border)
  kBayerClean,     // after preprocessing
  kYuv422Full,     // after Bayer-to-YUV (still bordered)
  kYuv422Stab,     // stabilized, cropped to coded size
  kYuv422Post,     // after post processing & digizoom
  kDisplayFb,      // double-buffered WVGA RGB888 frame buffer
  kReferenceArea,  // all H.264 reference frames, contiguous
  kRecon,          // reconstructed frame being written
  kBitstream,      // encoder output ring
  kMuxBuffer,      // multiplexer output ring
  kAudioRing,      // audio capture ring
};

inline constexpr int kSurfaceCount = 11;

class SurfaceLayout {
 public:
  /// Lay out all buffers for the given use case. `alignment` must be a
  /// multiple of the interleave stripe across all channels so every surface
  /// begins at channel 0 (keeps runs deterministic across channel counts).
  explicit SurfaceLayout(const UseCaseModel& model, std::uint64_t alignment = 64 * 1024);

  [[nodiscard]] const Surface& surface(SurfaceId id) const {
    return surfaces_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<Surface>& all() const { return surfaces_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<Surface> surfaces_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace mcm::video
