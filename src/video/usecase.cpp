#include "video/usecase.hpp"

#include <stdexcept>

namespace mcm::video {

std::string_view to_string(StageId id) {
  switch (id) {
    case StageId::kCameraIf: return "Camera I/F";
    case StageId::kPreprocess: return "Preprocess";
    case StageId::kBayerToYuv: return "Bayer to YUV";
    case StageId::kStabilization: return "Video stabilization";
    case StageId::kPostProcDigizoom: return "Post proc & digizoom";
    case StageId::kScalingToDisplay: return "Scaling to display";
    case StageId::kDisplayCtrl: return "DisplayCtrl";
    case StageId::kVideoEncoder: return "Video encoder";
    case StageId::kMultiplex: return "Multiplex";
    case StageId::kMemoryCard: return "Memory card";
    case StageId::kAudioCapture: return "Audio capture";
  }
  return "?";
}

UseCaseModel::UseCaseModel(UseCaseParams params)
    : params_(params),
      level_(level_spec(params.level)),
      ref_frames_(reference_frames(params.level, params.ref_policy)) {
  if (params_.digizoom < 1.0) throw std::invalid_argument("digizoom must be >= 1");

  const double n = static_cast<double>(level_.resolution.pixels());
  const double border = 1.0 + params_.stabilization_border;
  const double ns = n * border * border;      // sensor pixels incl. border
  const double nz = n / (params_.digizoom * params_.digizoom);
  const double wvga_rgb = static_cast<double>(params_.display.pixels()) *
                          bits_per_pixel(PixelFormat::kRgb888);
  const double fps = level_.fps;
  const double v_bits = level_.max_bitrate_mbps * 1e6 / fps;  // video, per frame
  const double a_bits = params_.audio_mbps * 1e6 / fps;       // audio, per frame

  const double b16 = bits_per_pixel(PixelFormat::kYuv422);  // Bayer/YUV422
  const double b12 = bits_per_pixel(PixelFormat::kYuv420);  // encoder frames

  stages_ = {
      // Image processing (operates on the bordered sensor image until the
      // stabilization crop, then on N coded pixels).
      {StageId::kCameraIf, to_string(StageId::kCameraIf),
       /*read=*/0.0, /*write=*/b16 * ns, true},
      {StageId::kPreprocess, to_string(StageId::kPreprocess),
       b16 * ns, b16 * ns, true},
      {StageId::kBayerToYuv, to_string(StageId::kBayerToYuv),
       b16 * ns, b16 * ns, true},
      {StageId::kStabilization, to_string(StageId::kStabilization),
       b16 * ns, b16 * n, true},
      {StageId::kPostProcDigizoom, to_string(StageId::kPostProcDigizoom),
       b16 * n, b16 * nz, true},
      {StageId::kScalingToDisplay, to_string(StageId::kScalingToDisplay),
       b16 * nz, wvga_rgb, true},
      {StageId::kDisplayCtrl, to_string(StageId::kDisplayCtrl),
       wvga_rgb * params_.display_refresh_hz / fps, 0.0, true},

      // Video coding. Encoder reads the 6 x N x #refs reference traffic plus
      // the current YUV422 input, writes the reconstructed YUV420 frame and
      // the output bitstream.
      {StageId::kVideoEncoder, to_string(StageId::kVideoEncoder),
       params_.encoder_ref_factor * ref_frames_ * b12 * n + b16 * nz,
       b12 * n + v_bits, false},
      {StageId::kAudioCapture, to_string(StageId::kAudioCapture),
       0.0, a_bits, false},
      {StageId::kMultiplex, to_string(StageId::kMultiplex),
       v_bits + a_bits, v_bits + a_bits, false},
      {StageId::kMemoryCard, to_string(StageId::kMemoryCard),
       v_bits + a_bits, 0.0, false},
  };
}

double UseCaseModel::image_processing_bits_per_frame() const {
  double bits = 0;
  for (const auto& s : stages_) {
    if (s.image_processing) bits += s.total_bits();
  }
  return bits;
}

double UseCaseModel::video_coding_bits_per_frame() const {
  double bits = 0;
  for (const auto& s : stages_) {
    if (!s.image_processing) bits += s.total_bits();
  }
  return bits;
}

double UseCaseModel::total_bits_per_frame() const {
  return image_processing_bits_per_frame() + video_coding_bits_per_frame();
}

}  // namespace mcm::video
