// The five HD-compatible H.264/AVC levels the paper evaluates (Table I
// columns), with the level limits that feed the bandwidth model: frame size,
// maximum frame rate, and maximum video bitrate (ITU-T H.264 Table A-1,
// Baseline/Main VBV). The reference-frame count can be taken either from the
// level's DPB limit or from the calibration that reproduces the paper's
// stated totals (see DESIGN.md Section 4).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "video/formats.hpp"

namespace mcm::video {

enum class H264Level : std::uint8_t { k31, k32, k40, k42, k52 };

inline constexpr std::array kAllLevels = {H264Level::k31, H264Level::k32,
                                          H264Level::k40, H264Level::k42,
                                          H264Level::k52};

struct LevelSpec {
  H264Level level;
  std::string_view name;        // "3.1"
  std::string_view format;      // "720p HD"
  Resolution resolution;
  double fps;                   // maximum frame rate to support ("Limits")
  double max_bitrate_mbps;      // maximum video output stream
  std::uint32_t max_dpb_mbs;    // DPB limit in macroblocks (H.264 Table A-1)
};

[[nodiscard]] const LevelSpec& level_spec(H264Level level);

/// Macroblocks per frame (16x16).
[[nodiscard]] std::uint32_t frame_macroblocks(Resolution r);

/// Reference frames allowed by the level's DPB limit (capped at 16).
[[nodiscard]] std::uint32_t dpb_reference_frames(H264Level level);

/// How to choose the number of reference frames in the use-case model.
enum class RefFramePolicy : std::uint8_t {
  kCalibrated,  // 4 for every level; reproduces the paper's stated totals
  kDpbDerived,  // from the level's DPB limit
};

[[nodiscard]] std::uint32_t reference_frames(H264Level level, RefFramePolicy policy);

/// Full H.264 Table A-1 level limits (all levels, not only the five HD
/// columns of the paper's Table I) - used to place arbitrary capture modes.
struct LevelLimits {
  std::string_view name;       // "1", "1b", ..., "5.2"
  std::uint32_t max_mbps;      // macroblocks per second
  std::uint32_t max_fs;        // macroblocks per frame
  std::uint32_t max_dpb_mbs;   // decoded picture buffer, macroblocks
  double max_bitrate_mbps;     // Baseline/Main VBV
};

[[nodiscard]] const std::vector<LevelLimits>& all_level_limits();

/// The lowest level whose limits admit `resolution` at `fps` (frame size,
/// macroblock rate), or nullptr when even level 5.2 cannot carry it.
[[nodiscard]] const LevelLimits* suggest_level(Resolution resolution, double fps);

}  // namespace mcm::video
