// Block-level H.264 motion-estimation access generator.
//
// The Table I model abstracts the encoder to per-frame volumes; this
// generator produces the underlying macroblock-level access pattern instead:
// for each macroblock, the current-frame block is read, a +/-search_range
// luma window is fetched from every reference frame around a pseudo-random
// motion center, and the reconstructed block is written back.
//
// Two modes:
//  - kWindowLoads: each window line is touched once (the traffic an ideal
//    macroblock-local buffer would still miss) - used as the high-fidelity
//    load for the address-pattern ablation.
//  - kAllTouches: every candidate block position reads all its lines (the
//    raw, cache-less software-encoder traffic in the spirit of the paper's
//    5570 GB/s citation [2]) - used to demonstrate the cache filter.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "video/formats.hpp"

namespace mcm::video {

struct EncoderAccess {
  std::uint64_t addr = 0;
  std::uint32_t bytes = 0;
  bool is_write = false;
};

enum class EncoderAccessMode : std::uint8_t { kWindowLoads, kAllTouches };

struct EncoderAccessParams {
  Resolution resolution;
  std::uint32_t ref_frames = 4;
  std::uint32_t search_range = 16;  // +/- pixels, luma
  EncoderAccessMode mode = EncoderAccessMode::kWindowLoads;

  std::uint64_t input_base = 0;     // current frame, YUV422 (2 B/pel)
  std::uint64_t ref_base = 0;       // reference area, frames contiguous
  std::uint64_t ref_frame_bytes = 0;  // stride between reference frames
  std::uint64_t recon_base = 0;     // reconstructed frame, YUV420

  std::uint32_t line_bytes = 64;    // access granularity (cache line)
  std::uint32_t candidate_step = 4; // kAllTouches: stride between candidates
  std::uint64_t seed = 1;

  /// Stop after this many macroblocks (0 = whole frame); results can be
  /// scaled by the caller when sampling.
  std::uint32_t max_macroblocks = 0;
};

class EncoderAccessGenerator {
 public:
  explicit EncoderAccessGenerator(const EncoderAccessParams& p);

  /// Next access, or nullopt at end of frame.
  std::optional<EncoderAccess> next();

  [[nodiscard]] std::uint32_t macroblocks_total() const { return mb_count_; }
  [[nodiscard]] std::uint32_t macroblocks_done() const { return mb_index_; }

 private:
  /// Build the access list for the next macroblock into pending_.
  void fill_macroblock();

  EncoderAccessParams p_;
  Rng rng_;
  std::uint32_t mb_cols_;
  std::uint32_t mb_rows_;
  std::uint32_t mb_count_;
  std::uint32_t mb_index_ = 0;

  std::vector<EncoderAccess> pending_;
  std::size_t pos_ = 0;
};

}  // namespace mcm::video
