#include "dram/device_class.hpp"

namespace mcm::dram {

std::string_view to_string(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kMobileDdr: return "mobile_ddr";
    case DeviceClass::kFastEdram: return "fast_edram";
    case DeviceClass::kSlowPcm: return "slow_pcm";
  }
  return "?";
}

std::optional<DeviceClass> parse_device_class(std::string_view name) {
  for (const auto cls : {DeviceClass::kMobileDdr, DeviceClass::kFastEdram,
                         DeviceClass::kSlowPcm}) {
    if (name == to_string(cls)) return cls;
  }
  return std::nullopt;
}

DeviceSpec fast_edram_like() {
  DeviceSpec spec;
  // Logic-process capacitors: a quarter of the density, roughly half the
  // row-cycle time of the mobile DDR baseline.
  spec.org.capacity_bits = 256ull * 1024 * 1024;
  spec.timing.tCAS_ns = 7.5;
  spec.timing.tRCD_ns = 7.5;
  spec.timing.tRP_ns = 7.5;
  spec.timing.tRAS_ns = 15.0;
  spec.timing.tRC_ns = 22.5;
  spec.timing.tRRD_ns = 5.0;
  spec.timing.tWR_ns = 7.5;
  spec.timing.tWTR_ns = 3.75;
  spec.timing.tRTP_ns = 3.75;
  // Short retention: refresh comes around 4x as often as the baseline's
  // 7.8 us tREFI - the fast cluster's price is refresh overhead.
  spec.timing.tRFC_ns = 40.0;
  spec.timing.tREFI_ns = 1950.0;
  spec.timing.tXP_ns = 5.0;
  spec.timing.tXSR_ns = 60.0;
  // Wide clock range so any channel of a heterogeneous system can follow
  // the base device's frequency (the whole system shares one clock).
  spec.timing.freq_min_mhz = 100.0;
  spec.timing.freq_max_mhz = 533.0;
  spec.power.vdd = 1.1;  // on-die logic-process array
  spec.power.idd0_ma = 30.0;
  spec.power.idd2n_ma = 12.0;
  spec.power.idd2p_ma = 0.4;
  spec.power.idd3n_ma = 20.0;
  spec.power.idd3p_ma = 1.2;
  spec.power.idd4r_ma = 70.0;
  spec.power.idd4w_ma = 68.0;
  spec.power.idd5_ma = 150.0;  // frequent short refresh bursts
  spec.power.idd6_ma = 0.3;
  return spec;
}

DeviceSpec slow_pcm_like() {
  DeviceSpec spec;
  // Dense non-volatile array: 4x the capacity per cluster.
  spec.org.capacity_bits = 2048ull * 1024 * 1024;
  spec.timing.tCAS_ns = 28.0;
  spec.timing.tRCD_ns = 55.0;  // array read into the row buffer
  spec.timing.tRP_ns = 25.0;
  spec.timing.tRAS_ns = 80.0;
  spec.timing.tRC_ns = 105.0;
  spec.timing.tRRD_ns = 12.0;
  spec.timing.tWR_ns = 120.0;  // cell program: the write-latency asymmetry
  spec.timing.tWTR_ns = 10.0;
  spec.timing.tRTP_ns = 7.5;
  // Non-volatile cells: no refresh machinery at all. tREFI = 0 is the
  // refresh-free marker (DerivedTiming::has_refresh()).
  spec.timing.tRFC_ns = 0.0;
  spec.timing.tREFI_ns = 0.0;
  spec.timing.tXP_ns = 10.0;
  spec.timing.tXSR_ns = 0.0;
  spec.timing.freq_min_mhz = 100.0;
  spec.timing.freq_max_mhz = 533.0;
  spec.power.idd0_ma = 25.0;
  spec.power.idd2n_ma = 8.0;  // cheap standby: nothing to keep alive
  spec.power.idd2p_ma = 0.3;
  spec.power.idd3n_ma = 14.0;
  spec.power.idd3p_ma = 1.0;
  spec.power.idd4r_ma = 60.0;
  spec.power.idd4w_ma = 180.0;  // programming current: writes cost ~3x reads
  spec.power.idd5_ma = 0.0;     // no refresh
  spec.power.idd6_ma = 0.0;     // no self refresh
  return spec;
}

DeviceSpec device_class_spec(DeviceClass cls, const DeviceSpec& base) {
  switch (cls) {
    case DeviceClass::kMobileDdr: return base;
    case DeviceClass::kFastEdram: return fast_edram_like();
    case DeviceClass::kSlowPcm: return slow_pcm_like();
  }
  return base;
}

}  // namespace mcm::dram
