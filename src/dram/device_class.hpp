// Pluggable device classes for heterogeneous channel clusters (paper §6
// future work): each channel of a multi-channel system can bind one of
// three memory technologies instead of the single hard-coded DRAM profile.
//
//   kMobileDdr  - the system's base DeviceSpec, unchanged. A system whose
//                 channels all bind kMobileDdr is bit-identical to one with
//                 no classes configured at all.
//   kFastEdram  - an eDRAM-like fast cluster: short tRC/tRCD/tCAS, but a
//                 short retention time, so refresh comes around four times
//                 as often (higher refresh overhead), and a smaller die.
//   kSlowPcm    - a PCM-like slow-dense cluster: asymmetric read/write
//                 latency and energy (writes program cells), four times the
//                 capacity, and no refresh at all (non-volatile cells).
//
// Classes resolve to full DeviceSpec tables, so every downstream consumer
// (timing derivation, energy model, address decode) is table-driven and
// needs no per-technology branches.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "dram/spec.hpp"

namespace mcm::dram {

enum class DeviceClass : std::uint8_t {
  kMobileDdr,  // bind the system's base device spec
  kFastEdram,  // eDRAM-like: fast rows, heavy refresh
  kSlowPcm,    // PCM-like: slow asymmetric writes, refresh-free
};

[[nodiscard]] std::string_view to_string(DeviceClass cls);
[[nodiscard]] std::optional<DeviceClass> parse_device_class(std::string_view name);

/// The eDRAM-like fast-cluster device table. Same x32 BL4 interface as the
/// paper's device (16 B bursts), so request packing and interleaving are
/// class-independent; only per-channel service timing and energy differ.
[[nodiscard]] DeviceSpec fast_edram_like();

/// The PCM-like slow-dense device table: tWR models the long cell program,
/// IDD4W >> IDD4R carries the write-energy asymmetry, and tREFI = 0 marks
/// the device refresh-free (DerivedTiming::has_refresh() turns the refresh
/// and self-refresh machinery off in both simulators).
[[nodiscard]] DeviceSpec slow_pcm_like();

/// Resolve a class against the system's base device. kMobileDdr returns
/// `base` itself, which is what keeps all-mobile-DDR systems bit-identical
/// to legacy homogeneous ones at any base device and frequency.
[[nodiscard]] DeviceSpec device_class_spec(DeviceClass cls, const DeviceSpec& base);

}  // namespace mcm::dram
