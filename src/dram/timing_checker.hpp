// Independent DRAM protocol validator. Replays a recorded command trace
// against the derived timing and reports every violation. It shares no code
// with Bank/BankCluster on purpose: the controller's scheduling is verified
// by a second, separately written implementation of the rules.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dram/command.hpp"
#include "dram/spec.hpp"

namespace mcm::dram {

class TimingChecker {
 public:
  TimingChecker(const OrgSpec& org, const DerivedTiming& timing)
      : org_(org), d_(timing) {}

  /// Validate a trace (commands must be in nondecreasing time order).
  /// Returns human-readable violation messages; empty means the trace obeys
  /// the protocol.
  [[nodiscard]] std::vector<std::string> check(std::span<const CommandRecord> trace) const;

 private:
  OrgSpec org_;
  DerivedTiming d_;
};

}  // namespace mcm::dram
