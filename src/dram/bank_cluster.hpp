// A bank cluster: the set of DRAM banks behind one channel (paper: 512 Mb,
// four banks, x32). Adds the cross-bank constraints on top of the per-bank
// rules: tRRD between activates to different banks and all-banks-precharged
// refresh.
//
// State is structure-of-arrays: per-bank earliest-activate / earliest-
// precharge / earliest-CAS bounds, last column use, and open-row ids live in
// contiguous parallel lanes (picosecond int64s; open row kNoOpenRow = -1
// when precharged). One lane pass answers cluster-wide questions — the
// controller's FR-FCFS kernels compare request rows against the open-row
// lane directly, and an open-bank counter makes any_row_open() O(1) — while
// the per-bank command methods keep exactly the legality assertions the old
// array-of-Bank layout had (the scalar Bank class remains as the documented
// single-bank reference; see dram/bank.hpp and its unit test).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "dram/spec.hpp"

namespace mcm::dram {

class BankCluster {
 public:
  /// Open-row lane value for a precharged bank.
  static constexpr std::int64_t kNoOpenRow = -1;

  explicit BankCluster(const OrgSpec& org)
      : org_(org),
        next_act_ps_(org.banks, 0),
        next_pre_ps_(org.banks, 0),
        next_cas_ps_(org.banks, 0),
        last_use_ps_(org.banks, 0),
        open_row_(org.banks, kNoOpenRow) {}

  [[nodiscard]] const OrgSpec& org() const { return org_; }
  [[nodiscard]] std::uint32_t bank_count() const {
    return static_cast<std::uint32_t>(open_row_.size());
  }

  /// Contiguous open-row lane (bank_count() entries, kNoOpenRow when
  /// precharged) for the controller's SoA readiness/arbitration kernels.
  [[nodiscard]] const std::int64_t* open_rows() const { return open_row_.data(); }

  [[nodiscard]] bool row_open(std::uint32_t b) const {
    return open_row_[b] != kNoOpenRow;
  }
  [[nodiscard]] std::uint32_t open_row(std::uint32_t b) const {
    assert(row_open(b));
    return static_cast<std::uint32_t>(open_row_[b]);
  }
  /// Last column command issue time (for timeout page policies).
  [[nodiscard]] Time last_use(std::uint32_t b) const {
    return Time{last_use_ps_[b]};
  }

  [[nodiscard]] Time earliest_activate(std::uint32_t b) const {
    Time t = max(Time{next_act_ps_[b]}, rrd_free_);
    t = max(t, faw_free_);
    return t;
  }
  [[nodiscard]] Time earliest_precharge(std::uint32_t b) const {
    return Time{next_pre_ps_[b]};
  }
  [[nodiscard]] Time earliest_cas(std::uint32_t b) const {
    return Time{next_cas_ps_[b]};
  }

  /// Read-only per-bank view; keeps the bank(i) call sites (tests, dumps)
  /// source-compatible with the old array-of-Bank layout.
  class BankView {
   public:
    BankView(const BankCluster& c, std::uint32_t b) : c_(c), b_(b) {}
    [[nodiscard]] bool row_open() const { return c_.row_open(b_); }
    [[nodiscard]] std::uint32_t open_row() const { return c_.open_row(b_); }
    [[nodiscard]] Time earliest_activate() const {
      return Time{c_.next_act_ps_[b_]};
    }
    [[nodiscard]] Time earliest_precharge() const {
      return Time{c_.next_pre_ps_[b_]};
    }
    [[nodiscard]] Time earliest_cas() const { return Time{c_.next_cas_ps_[b_]}; }
    [[nodiscard]] Time last_use() const { return c_.last_use(b_); }

   private:
    const BankCluster& c_;
    std::uint32_t b_;
  };
  [[nodiscard]] BankView bank(std::uint32_t i) const { return BankView{*this, i}; }

  void activate(Time t, std::uint32_t b, std::uint32_t row, const DerivedTiming& d) {
    assert(t >= rrd_free_);
    assert(t >= faw_free_);
    assert(!row_open(b));
    assert(t.ps() >= next_act_ps_[b]);
    open_row_[b] = static_cast<std::int64_t>(row);
    ++open_banks_;
    next_cas_ps_[b] = (t + d.cycles(d.trcd)).ps();
    next_pre_ps_[b] = (t + d.cycles(d.tras)).ps();
    next_act_ps_[b] = (t + d.cycles(d.trc)).ps();
    rrd_free_ = t + d.cycles(d.trrd);
    if (d.tfaw > 0) {
      // Sliding four-activate window: after recording this ACT, the oldest
      // of the last four bounds the next one.
      act_history_[act_head_] = t;
      act_head_ = (act_head_ + 1) % kFawWindow;
      const Time oldest = act_history_[act_head_];
      faw_free_ = oldest > Time{-1} ? oldest + d.cycles(d.tfaw) : Time::zero();
    }
  }

  void precharge(Time t, std::uint32_t b, const DerivedTiming& d) {
    assert(row_open(b));
    assert(t.ps() >= next_pre_ps_[b]);
    open_row_[b] = kNoOpenRow;
    --open_banks_;
    next_act_ps_[b] = std::max(next_act_ps_[b], (t + d.cycles(d.trp)).ps());
  }

  /// Issue a read command at t. Returns the end of the data transfer.
  [[nodiscard]] Time read(Time t, std::uint32_t b, const DerivedTiming& d) {
    assert(row_open(b));
    assert(t.ps() >= next_cas_ps_[b]);
    next_pre_ps_[b] = std::max(next_pre_ps_[b], (t + d.cycles(d.trtp)).ps());
    last_use_ps_[b] = t.ps();
    return t + d.cycles(d.cl + d.burst_ck);
  }

  /// Issue a write command at t. Returns the end of the data transfer.
  [[nodiscard]] Time write(Time t, std::uint32_t b, const DerivedTiming& d) {
    assert(row_open(b));
    assert(t.ps() >= next_cas_ps_[b]);
    const Time data_end = t + d.cycles(d.cwl + d.burst_ck);
    next_pre_ps_[b] =
        std::max(next_pre_ps_[b], (data_end + d.cycles(d.twr)).ps());
    last_use_ps_[b] = t.ps();
    return data_end;
  }

  [[nodiscard]] bool all_precharged() const { return open_banks_ == 0; }
  [[nodiscard]] bool any_row_open() const { return open_banks_ != 0; }

  /// Earliest time an all-bank refresh may issue, assuming all banks are
  /// already precharged. One pass over the activate lane.
  [[nodiscard]] Time earliest_refresh() const {
    std::int64_t t = 0;
    for (const std::int64_t a : next_act_ps_) t = std::max(t, a);
    return Time{t};
  }

  void refresh(Time t, const DerivedTiming& d) {
    assert(all_precharged());
    const std::int64_t free = (t + d.cycles(d.trfc)).ps();
    for (std::size_t b = 0; b < next_act_ps_.size(); ++b) {
      assert(t.ps() >= next_act_ps_[b]);
      next_act_ps_[b] = free;
    }
  }

 private:
  static constexpr int kFawWindow = 4;

  OrgSpec org_;
  // Parallel per-bank lanes (ps). See class comment.
  std::vector<std::int64_t> next_act_ps_;
  std::vector<std::int64_t> next_pre_ps_;
  std::vector<std::int64_t> next_cas_ps_;
  std::vector<std::int64_t> last_use_ps_;
  std::vector<std::int64_t> open_row_;
  std::uint32_t open_banks_ = 0;
  Time rrd_free_ = Time::zero();  // earliest next ACT, any bank (tRRD)
  Time faw_free_ = Time::zero();  // earliest next ACT under tFAW
  Time act_history_[kFawWindow] = {Time{-1}, Time{-1}, Time{-1}, Time{-1}};
  int act_head_ = 0;
};

}  // namespace mcm::dram
