// A bank cluster: the set of DRAM banks behind one channel (paper: 512 Mb,
// four banks, x32). Adds the cross-bank constraints on top of Bank: tRRD
// between activates to different banks and all-banks-precharged refresh.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "dram/bank.hpp"
#include "dram/spec.hpp"

namespace mcm::dram {

class BankCluster {
 public:
  explicit BankCluster(const OrgSpec& org) : org_(org), banks_(org.banks) {}

  [[nodiscard]] const OrgSpec& org() const { return org_; }
  [[nodiscard]] std::uint32_t bank_count() const {
    return static_cast<std::uint32_t>(banks_.size());
  }
  [[nodiscard]] const Bank& bank(std::uint32_t i) const { return banks_[i]; }

  [[nodiscard]] Time earliest_activate(std::uint32_t b) const {
    Time t = max(banks_[b].earliest_activate(), rrd_free_);
    t = max(t, faw_free_);
    return t;
  }
  [[nodiscard]] Time earliest_precharge(std::uint32_t b) const {
    return banks_[b].earliest_precharge();
  }
  [[nodiscard]] Time earliest_cas(std::uint32_t b) const {
    return banks_[b].earliest_cas();
  }

  void activate(Time t, std::uint32_t b, std::uint32_t row, const DerivedTiming& d) {
    assert(t >= rrd_free_);
    assert(t >= faw_free_);
    banks_[b].activate(t, row, d);
    rrd_free_ = t + d.cycles(d.trrd);
    if (d.tfaw > 0) {
      // Sliding four-activate window: after recording this ACT, the oldest
      // of the last four bounds the next one.
      act_history_[act_head_] = t;
      act_head_ = (act_head_ + 1) % kFawWindow;
      const Time oldest = act_history_[act_head_];
      faw_free_ = oldest > Time{-1} ? oldest + d.cycles(d.tfaw) : Time::zero();
    }
  }

  void precharge(Time t, std::uint32_t b, const DerivedTiming& d) {
    banks_[b].precharge(t, d);
  }

  [[nodiscard]] Time read(Time t, std::uint32_t b, const DerivedTiming& d) {
    return banks_[b].read(t, d);
  }

  [[nodiscard]] Time write(Time t, std::uint32_t b, const DerivedTiming& d) {
    return banks_[b].write(t, d);
  }

  [[nodiscard]] bool all_precharged() const {
    for (const auto& b : banks_) {
      if (b.row_open()) return false;
    }
    return true;
  }

  [[nodiscard]] bool any_row_open() const { return !all_precharged(); }

  /// Earliest time an all-bank refresh may issue, assuming all banks are
  /// already precharged.
  [[nodiscard]] Time earliest_refresh() const {
    Time t = Time::zero();
    for (const auto& b : banks_) t = max(t, b.earliest_activate());
    return t;
  }

  void refresh(Time t, const DerivedTiming& d) {
    assert(all_precharged());
    for (auto& b : banks_) b.refresh(t, d);
  }

 private:
  static constexpr int kFawWindow = 4;

  OrgSpec org_;
  std::vector<Bank> banks_;
  Time rrd_free_ = Time::zero();  // earliest next ACT, any bank (tRRD)
  Time faw_free_ = Time::zero();  // earliest next ACT under tFAW
  Time act_history_[kFawWindow] = {Time{-1}, Time{-1}, Time{-1}, Time{-1}};
  int act_head_ = 0;
};

}  // namespace mcm::dram
