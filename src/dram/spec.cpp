#include "dram/spec.hpp"

#include <cmath>
#include <stdexcept>

namespace mcm::dram {
namespace {

int ns_to_cycles(double ns, Time clk) {
  const auto ps = static_cast<std::int64_t>(std::llround(ns * 1e3));
  return static_cast<int>((ps + clk.ps() - 1) / clk.ps());
}

}  // namespace

DerivedTiming DerivedTiming::derive(const TimingSpec& t, Frequency f) {
  if (f.mhz() < t.freq_min_mhz - 1e-9 || f.mhz() > t.freq_max_mhz + 1e-9) {
    throw std::invalid_argument("clock frequency outside the device's DDR2 range");
  }
  DerivedTiming d;
  d.freq = f;
  d.clk = f.period();
  d.cl = ns_to_cycles(t.tCAS_ns, d.clk);
  d.cwl = static_cast<int>(t.tCWL_ck);
  d.burst_ck = t.burst_cycles;
  d.trcd = ns_to_cycles(t.tRCD_ns, d.clk);
  d.trp = ns_to_cycles(t.tRP_ns, d.clk);
  d.tras = ns_to_cycles(t.tRAS_ns, d.clk);
  d.trc = ns_to_cycles(t.tRC_ns, d.clk);
  d.trrd = ns_to_cycles(t.tRRD_ns, d.clk);
  d.twr = ns_to_cycles(t.tWR_ns, d.clk);
  d.twtr = ns_to_cycles(t.tWTR_ns, d.clk);
  d.trtp = ns_to_cycles(t.tRTP_ns, d.clk);
  d.trfc = t.tRFC_ns > 0.0 ? ns_to_cycles(t.tRFC_ns, d.clk) : 0;
  d.trefi = t.tREFI_ns > 0.0 ? ns_to_cycles(t.tREFI_ns, d.clk) : 0;
  d.txp = ns_to_cycles(t.tXP_ns, d.clk);
  d.tcke = static_cast<int>(t.tCKE_ck);
  d.txsr = ns_to_cycles(t.tXSR_ns, d.clk);
  d.tfaw = t.tFAW_ns > 0.0 ? ns_to_cycles(t.tFAW_ns, d.clk) : 0;
  return d;
}

DeviceSpec DeviceSpec::mobile_ddr_2008() {
  DeviceSpec spec;
  spec.timing.freq_min_mhz = 100.0;
  spec.timing.freq_max_mhz = 200.0;
  // Micron 512 Mb Mobile DDR (-5 grade) class numbers at 1.8 V.
  spec.power.vdd = 1.8;
  spec.power.idd0_ma = 65.0;
  spec.power.idd2n_ma = 22.0;
  spec.power.idd2p_ma = 0.6;
  spec.power.idd3n_ma = 35.0;
  spec.power.idd3p_ma = 2.0;
  spec.power.idd4r_ma = 125.0;
  spec.power.idd4w_ma = 120.0;
  spec.power.idd5_ma = 140.0;
  spec.power.idd6_ma = 0.35;
  return spec;
}

DeviceSpec DeviceSpec::eight_bank_future() {
  DeviceSpec spec;
  spec.org.banks = 8;
  spec.org.capacity_bits = 1024ull * 1024 * 1024;  // 1 Gb cluster
  spec.timing.tFAW_ns = 50.0;                      // DDR3-style window
  spec.timing.tRRD_ns = 10.0;
  return spec;
}

DeviceSpec DeviceSpec::wide_io_like() {
  DeviceSpec spec;
  spec.org.word_bits = 128;  // TSV-wide interface: 64 B per BL4 burst
  spec.timing.burst_cycles = 4;  // single data rate
  spec.timing.freq_min_mhz = 100.0;
  spec.timing.freq_max_mhz = 266.0;
  // Core currents rise with the 4x wider fetch, far less than 4x (shared
  // row buffer); TSV I/O is cheap, which the interface spec captures.
  spec.power.idd4r_ma = 150.0;
  spec.power.idd4w_ma = 144.0;
  spec.power.idd0_ma = 55.0;
  return spec;
}

}  // namespace mcm::dram
