// DRAM command vocabulary and trace records. The controller emits
// CommandRecords; the independent TimingChecker re-validates recorded traces
// against the derived timing so scheduler bugs cannot hide.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"

namespace mcm::dram {

enum class Command : std::uint8_t {
  kActivate,
  kPrecharge,
  kRead,
  kWrite,
  kRefresh,        // all-bank auto refresh
  kPowerDownEnter,
  kPowerDownExit,
  kSelfRefreshEnter,
  kSelfRefreshExit,
};

[[nodiscard]] constexpr std::string_view to_string(Command c) {
  switch (c) {
    case Command::kActivate: return "ACT";
    case Command::kPrecharge: return "PRE";
    case Command::kRead: return "RD";
    case Command::kWrite: return "WR";
    case Command::kRefresh: return "REF";
    case Command::kPowerDownEnter: return "PDE";
    case Command::kPowerDownExit: return "PDX";
    case Command::kSelfRefreshEnter: return "SRE";
    case Command::kSelfRefreshExit: return "SRX";
  }
  return "?";
}

struct CommandRecord {
  Time at;
  Command cmd = Command::kActivate;
  std::uint32_t bank = 0;  // unused for REF/PDE/PDX
  std::uint32_t row = 0;   // ACT only
};

}  // namespace mcm::dram
