// Per-bank DRAM state machine with earliest-legal-time bookkeeping.
//
// The model is transaction-level: instead of ticking every cycle, each bank
// keeps the earliest picosecond at which the next command of each kind may
// legally issue. The controller asks for those bounds, picks issue times on
// clock edges, and commits commands; commits assert legality, so any
// scheduling bug trips immediately in debug builds (and is caught again by
// the independent TimingChecker in tests).
#pragma once

#include <cassert>
#include <cstdint>

#include "common/units.hpp"
#include "dram/spec.hpp"

namespace mcm::dram {

class Bank {
 public:
  Bank() = default;

  [[nodiscard]] bool row_open() const { return row_open_; }
  [[nodiscard]] std::uint32_t open_row() const {
    assert(row_open_);
    return open_row_;
  }

  /// Earliest time an ACT may issue (same-bank tRC / tRP honored;
  /// cross-bank tRRD is cluster-level and enforced by BankCluster).
  [[nodiscard]] Time earliest_activate() const { return next_act_; }
  /// Earliest time a PRE may issue (tRAS / tWR / tRTP honored).
  [[nodiscard]] Time earliest_precharge() const { return next_pre_; }
  /// Earliest time a RD/WR column command may issue (tRCD honored).
  [[nodiscard]] Time earliest_cas() const { return next_cas_; }

  void activate(Time t, std::uint32_t row, const DerivedTiming& d) {
    assert(!row_open_);
    assert(t >= next_act_);
    row_open_ = true;
    open_row_ = row;
    next_cas_ = t + d.cycles(d.trcd);
    next_pre_ = t + d.cycles(d.tras);
    next_act_ = t + d.cycles(d.trc);
  }

  void precharge(Time t, const DerivedTiming& d) {
    assert(row_open_);
    assert(t >= next_pre_);
    row_open_ = false;
    next_act_ = max(next_act_, t + d.cycles(d.trp));
  }

  /// Last column command issue time (for timeout page policies).
  [[nodiscard]] Time last_use() const { return last_use_; }

  /// Issue a read command at t. Returns the end of the data transfer.
  [[nodiscard]] Time read(Time t, const DerivedTiming& d) {
    assert(row_open_);
    assert(t >= next_cas_);
    next_pre_ = max(next_pre_, t + d.cycles(d.trtp));
    last_use_ = t;
    return t + d.cycles(d.cl + d.burst_ck);
  }

  /// Issue a write command at t. Returns the end of the data transfer.
  [[nodiscard]] Time write(Time t, const DerivedTiming& d) {
    assert(row_open_);
    assert(t >= next_cas_);
    const Time data_end = t + d.cycles(d.cwl + d.burst_ck);
    next_pre_ = max(next_pre_, data_end + d.cycles(d.twr));
    last_use_ = t;
    return data_end;
  }

  /// Refresh resets the bank to idle; next ACT must wait tRFC from t.
  void refresh(Time t, const DerivedTiming& d) {
    assert(!row_open_);
    assert(t >= next_act_);
    next_act_ = t + d.cycles(d.trfc);
  }

 private:
  bool row_open_ = false;
  std::uint32_t open_row_ = 0;
  Time next_act_ = Time::zero();
  Time next_pre_ = Time::zero();
  Time next_cas_ = Time::zero();
  Time last_use_ = Time::zero();
};

}  // namespace mcm::dram
