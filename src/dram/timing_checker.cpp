#include "dram/timing_checker.hpp"

#include <cstdio>
#include <optional>

namespace mcm::dram {
namespace {

struct BankView {
  bool open = false;
  Time last_act = Time{-1'000'000'000};
  Time last_pre = Time{-1'000'000'000};
  Time last_rd = Time{-1'000'000'000};
  Time wr_data_end = Time{-1'000'000'000};
};

std::string msg(const CommandRecord& c, const char* what) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "t=%lld ps %s bank=%u: %s",
                static_cast<long long>(c.at.ps()), std::string(to_string(c.cmd)).c_str(),
                c.bank, what);
  return buf;
}

}  // namespace

std::vector<std::string> TimingChecker::check(
    std::span<const CommandRecord> trace) const {
  std::vector<std::string> violations;
  std::vector<BankView> banks(org_.banks);

  const Time far_past{-1'000'000'000};
  Time last_any_act = far_past;
  Time last_cmd = far_past;
  Time ref_busy_until = far_past;       // end of in-progress refresh
  Time data_bus_free = far_past;        // end of last data transfer
  bool last_data_was_write = false;
  Time last_wr_data_end_any = far_past; // for tWTR (any bank, shared bus)
  bool powered_down = false;
  Time pd_enter = far_past;
  Time pd_exit_ready = far_past;        // pd_exit + tXP
  bool self_refreshing = false;
  Time sr_enter = far_past;
  Time sr_exit_ready = far_past;        // sr_exit + tXSR
  Time faw_acts[4] = {far_past, far_past, far_past, far_past};
  int faw_head = 0;

  auto cyc = [&](int n) { return d_.cycles(n); };

  for (const auto& c : trace) {
    if (c.at < last_cmd) {
      violations.push_back(msg(c, "trace not in time order"));
    }
    if (c.at.ps() % d_.clk.ps() != 0) {
      violations.push_back(msg(c, "command not on a clock edge"));
    }
    if (c.at == last_cmd && c.cmd != Command::kPowerDownExit) {
      violations.push_back(msg(c, "two commands on one clock edge"));
    }
    last_cmd = c.at;

    const bool is_dram_cmd = c.cmd != Command::kPowerDownEnter &&
                             c.cmd != Command::kPowerDownExit &&
                             c.cmd != Command::kSelfRefreshEnter &&
                             c.cmd != Command::kSelfRefreshExit;
    if (powered_down && is_dram_cmd) {
      violations.push_back(msg(c, "command while in power-down"));
    }
    if (self_refreshing && is_dram_cmd) {
      violations.push_back(msg(c, "command while in self-refresh"));
    }
    if (is_dram_cmd && c.at < pd_exit_ready) {
      violations.push_back(msg(c, "command before tXP after power-down exit"));
    }
    if (is_dram_cmd && c.at < sr_exit_ready) {
      violations.push_back(msg(c, "command before tXSR after self-refresh exit"));
    }
    if (is_dram_cmd && c.at < ref_busy_until) {
      violations.push_back(msg(c, "command during refresh (tRFC)"));
    }
    if (c.bank >= org_.banks && is_dram_cmd && c.cmd != Command::kRefresh) {
      violations.push_back(msg(c, "bank index out of range"));
      continue;
    }

    switch (c.cmd) {
      case Command::kActivate: {
        auto& b = banks[c.bank];
        if (b.open) violations.push_back(msg(c, "ACT to open bank"));
        if (c.at < b.last_act + cyc(d_.trc))
          violations.push_back(msg(c, "tRC violated"));
        if (c.at < b.last_pre + cyc(d_.trp))
          violations.push_back(msg(c, "tRP violated"));
        if (c.at < last_any_act + cyc(d_.trrd))
          violations.push_back(msg(c, "tRRD violated"));
        if (d_.tfaw > 0) {
          if (c.at < faw_acts[faw_head] + cyc(d_.tfaw))
            violations.push_back(msg(c, "tFAW violated"));
          faw_acts[faw_head] = c.at;
          faw_head = (faw_head + 1) % 4;
        }
        b.open = true;
        b.last_act = c.at;
        last_any_act = c.at;
        break;
      }
      case Command::kPrecharge: {
        auto& b = banks[c.bank];
        if (!b.open) violations.push_back(msg(c, "PRE to closed bank"));
        if (c.at < b.last_act + cyc(d_.tras))
          violations.push_back(msg(c, "tRAS violated"));
        if (c.at < b.last_rd + cyc(d_.trtp))
          violations.push_back(msg(c, "tRTP violated"));
        if (c.at < b.wr_data_end + cyc(d_.twr))
          violations.push_back(msg(c, "tWR violated"));
        b.open = false;
        b.last_pre = c.at;
        break;
      }
      case Command::kRead: {
        auto& b = banks[c.bank];
        if (!b.open) violations.push_back(msg(c, "RD to closed bank"));
        if (c.at < b.last_act + cyc(d_.trcd))
          violations.push_back(msg(c, "tRCD violated (read)"));
        if (c.at < last_wr_data_end_any + cyc(d_.twtr))
          violations.push_back(msg(c, "tWTR violated"));
        const Time data_start = c.at + cyc(d_.cl);
        Time required = data_bus_free;
        if (last_data_was_write) required += cyc(1);  // bus turnaround
        if (data_start < required)
          violations.push_back(msg(c, "data bus collision (read)"));
        data_bus_free = data_start + cyc(d_.burst_ck);
        last_data_was_write = false;
        b.last_rd = c.at;
        break;
      }
      case Command::kWrite: {
        auto& b = banks[c.bank];
        if (!b.open) violations.push_back(msg(c, "WR to closed bank"));
        if (c.at < b.last_act + cyc(d_.trcd))
          violations.push_back(msg(c, "tRCD violated (write)"));
        const Time data_start = c.at + cyc(d_.cwl);
        Time required = data_bus_free;
        if (!last_data_was_write && data_bus_free > far_past + Time{1})
          required += cyc(1);  // read -> write turnaround
        if (data_start < required)
          violations.push_back(msg(c, "data bus collision (write)"));
        data_bus_free = data_start + cyc(d_.burst_ck);
        last_data_was_write = true;
        b.wr_data_end = data_start + cyc(d_.burst_ck);
        last_wr_data_end_any = b.wr_data_end;
        break;
      }
      case Command::kRefresh: {
        for (std::uint32_t i = 0; i < org_.banks; ++i) {
          const auto& b = banks[i];
          if (b.open) {
            violations.push_back(msg(c, "REF with open row"));
            break;
          }
          if (c.at < b.last_pre + cyc(d_.trp)) {
            violations.push_back(msg(c, "REF before tRP"));
            break;
          }
        }
        ref_busy_until = c.at + cyc(d_.trfc);
        break;
      }
      case Command::kPowerDownEnter: {
        if (powered_down) violations.push_back(msg(c, "PDE while powered down"));
        powered_down = true;
        pd_enter = c.at;
        break;
      }
      case Command::kPowerDownExit: {
        if (!powered_down) violations.push_back(msg(c, "PDX while not powered down"));
        if (c.at < pd_enter + cyc(d_.tcke))
          violations.push_back(msg(c, "tCKE violated"));
        powered_down = false;
        pd_exit_ready = c.at + cyc(d_.txp);
        break;
      }
      case Command::kSelfRefreshEnter: {
        if (self_refreshing) violations.push_back(msg(c, "SRE while in self-refresh"));
        if (powered_down) violations.push_back(msg(c, "SRE while powered down"));
        for (std::uint32_t i = 0; i < org_.banks; ++i) {
          if (banks[i].open) {
            violations.push_back(msg(c, "SRE with open row"));
            break;
          }
        }
        self_refreshing = true;
        sr_enter = c.at;
        break;
      }
      case Command::kSelfRefreshExit: {
        if (!self_refreshing)
          violations.push_back(msg(c, "SRX while not in self-refresh"));
        if (c.at < sr_enter + cyc(d_.tcke))
          violations.push_back(msg(c, "tCKE violated (self-refresh)"));
        self_refreshing = false;
        sr_exit_ready = c.at + cyc(d_.txsr);
        break;
      }
    }
  }
  return violations;
}

}  // namespace mcm::dram
