// IDD-based DRAM energy model in the style of Micron's "Calculating DDR
// Memory System Power" technical note, which the paper cites for its power
// parameters. Event energies (ACT/PRE pair, read burst, write burst,
// refresh) are charged per command; standby and power-down are charged by
// state residency; mA x V x ns = pJ throughout.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "dram/spec.hpp"

namespace mcm::dram {

/// Background power states of one bank cluster, tracked by residency.
enum class PowerState : std::uint8_t {
  kActiveStandby,      // >= 1 row open, CKE high
  kPrechargeStandby,   // all rows closed, CKE high
  kActivePowerDown,    // >= 1 row open, CKE low (short idle gaps, open-page)
  kPowerDown,          // all rows closed, CKE low (precharge power-down)
  kSelfRefresh,        // CKE low, cells refreshed internally (long idle)
};

/// Raw activity totals accumulated by one channel during a run.
struct EnergyLedger {
  std::uint64_t n_act = 0;  // ACT/PRE pairs (every ACT is eventually PREd)
  std::uint64_t n_rd = 0;
  std::uint64_t n_wr = 0;
  std::uint64_t n_ref = 0;
  std::uint64_t n_powerdown_entries = 0;
  std::uint64_t n_selfrefresh_entries = 0;

  Time t_active_standby = Time::zero();
  Time t_precharge_standby = Time::zero();
  Time t_active_powerdown = Time::zero();
  Time t_powerdown = Time::zero();
  Time t_selfrefresh = Time::zero();

  void add_residency(PowerState s, Time dt) {
    switch (s) {
      case PowerState::kActiveStandby: t_active_standby += dt; break;
      case PowerState::kPrechargeStandby: t_precharge_standby += dt; break;
      case PowerState::kActivePowerDown: t_active_powerdown += dt; break;
      case PowerState::kPowerDown: t_powerdown += dt; break;
      case PowerState::kSelfRefresh: t_selfrefresh += dt; break;
    }
  }

  EnergyLedger& operator+=(const EnergyLedger& rhs) {
    n_act += rhs.n_act;
    n_rd += rhs.n_rd;
    n_wr += rhs.n_wr;
    n_ref += rhs.n_ref;
    n_powerdown_entries += rhs.n_powerdown_entries;
    n_selfrefresh_entries += rhs.n_selfrefresh_entries;
    t_active_standby += rhs.t_active_standby;
    t_precharge_standby += rhs.t_precharge_standby;
    t_active_powerdown += rhs.t_active_powerdown;
    t_powerdown += rhs.t_powerdown;
    t_selfrefresh += rhs.t_selfrefresh;
    return *this;
  }
};

/// Energy by component, in picojoules.
struct EnergyBreakdown {
  double act_pre_pj = 0;
  double read_pj = 0;
  double write_pj = 0;
  double refresh_pj = 0;
  double active_standby_pj = 0;
  double precharge_standby_pj = 0;
  double active_powerdown_pj = 0;
  double powerdown_pj = 0;
  double selfrefresh_pj = 0;

  [[nodiscard]] double total_pj() const {
    return act_pre_pj + read_pj + write_pj + refresh_pj + active_standby_pj +
           precharge_standby_pj + active_powerdown_pj + powerdown_pj +
           selfrefresh_pj;
  }
  [[nodiscard]] double background_pj() const {
    return active_standby_pj + precharge_standby_pj + active_powerdown_pj +
           powerdown_pj + selfrefresh_pj;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& rhs) {
    act_pre_pj += rhs.act_pre_pj;
    read_pj += rhs.read_pj;
    write_pj += rhs.write_pj;
    refresh_pj += rhs.refresh_pj;
    active_standby_pj += rhs.active_standby_pj;
    precharge_standby_pj += rhs.precharge_standby_pj;
    active_powerdown_pj += rhs.active_powerdown_pj;
    powerdown_pj += rhs.powerdown_pj;
    selfrefresh_pj += rhs.selfrefresh_pj;
    return *this;
  }
};

class EnergyModel {
 public:
  EnergyModel(const PowerSpec& p, const DerivedTiming& d);

  /// Per-event energies (pJ).
  [[nodiscard]] double e_act_pre_pj() const { return e_act_pre_pj_; }
  [[nodiscard]] double e_read_pj() const { return e_read_pj_; }
  [[nodiscard]] double e_write_pj() const { return e_write_pj_; }
  [[nodiscard]] double e_refresh_pj() const { return e_refresh_pj_; }

  /// Background powers (mW).
  [[nodiscard]] double p_active_standby_mw() const { return p_act_stby_mw_; }
  [[nodiscard]] double p_precharge_standby_mw() const { return p_pre_stby_mw_; }
  [[nodiscard]] double p_active_powerdown_mw() const { return p_act_pd_mw_; }
  [[nodiscard]] double p_powerdown_mw() const { return p_pd_mw_; }
  [[nodiscard]] double p_selfrefresh_mw() const { return p_sr_mw_; }

  [[nodiscard]] EnergyBreakdown tally(const EnergyLedger& ledger) const;

 private:
  double e_act_pre_pj_;
  double e_read_pj_;
  double e_write_pj_;
  double e_refresh_pj_;
  double p_act_stby_mw_;
  double p_pre_stby_mw_;
  double p_act_pd_mw_;
  double p_pd_mw_;
  double p_sr_mw_;
};

}  // namespace mcm::dram
