// DRAM device specification for the paper's "theoretical next generation
// mobile DDR SDRAM": organization, ns-domain timing parameters, and IDD-based
// power parameters.
//
// Extrapolation rule (paper, Section III): parameters with a clear connection
// to clock frequency are extrapolated; the rest are used exactly as denoted in
// the 200 MHz Mobile DDR datasheet. We implement that by keeping analog
// timings in nanoseconds and re-deriving cycle counts at each simulated
// frequency (200-533 MHz per the DDR2 range), while the data rate scales with
// the clock (DDR: both edges).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace mcm::dram {

/// Physical organization of one bank cluster (one channel's DRAM die).
struct OrgSpec {
  std::uint32_t banks = 4;
  std::uint64_t capacity_bits = 512ull * 1024 * 1024;  // 512 Mb per cluster
  std::uint32_t word_bits = 32;                        // x32 interface
  std::uint32_t burst_length = 4;                      // words per burst (min)
  std::uint32_t row_bytes = 2048;                      // page size

  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_bits / 8; }
  [[nodiscard]] std::uint32_t bytes_per_burst() const {
    return word_bits / 8 * burst_length;  // 16 B with x32 BL4
  }
  [[nodiscard]] std::uint32_t bursts_per_row() const {
    return row_bytes / bytes_per_burst();
  }
  [[nodiscard]] std::uint64_t rows_per_bank() const {
    return capacity_bytes() / (static_cast<std::uint64_t>(banks) * row_bytes);
  }
};

/// Analog (ns-domain) timing parameters at the datasheet reference point.
struct TimingSpec {
  double tCAS_ns = 15.0;   // read latency (CL = 3 cycles @ 200 MHz)
  double tCWL_ck = 1.0;    // write latency, cycles (LPDDR fixed at 1 clock)
  double tRCD_ns = 15.0;   // activate -> column command
  double tRP_ns = 15.0;    // precharge -> activate
  double tRAS_ns = 40.0;   // activate -> precharge (min)
  double tRC_ns = 55.0;    // activate -> activate, same bank
  double tRRD_ns = 10.0;   // activate -> activate, different bank
  double tWR_ns = 15.0;    // write recovery before precharge
  double tWTR_ns = 5.0;    // write data end -> read command
  double tRTP_ns = 7.5;    // read -> precharge
  double tRFC_ns = 72.0;   // auto-refresh cycle time
  double tREFI_ns = 7812.5;  // average refresh interval (64 ms / 8192 rows);
                             // 0 = refresh-free device (non-volatile cells)
  double tXP_ns = 7.5;     // power-down exit -> first command
  double tCKE_ck = 2.0;    // minimum CKE low time, cycles
  double tXSR_ns = 112.5;  // self-refresh exit -> first command
  double tFAW_ns = 0.0;    // four-activate window; 0 disables (LPDDR1 has none)

  /// Data-bus cycles one burst occupies: burst_length / transfers-per-clock
  /// (2 for the paper's DDR BL4 device; 4 for an SDR interface like Wide
  /// I/O-style stacked DRAM).
  int burst_cycles = 2;

  double freq_min_mhz = 200.0;  // DDR2 clock range the paper sweeps
  double freq_max_mhz = 533.0;
};

/// IDD-style current parameters (mA) plus operating voltage.
///
/// The paper projects a 1.35 V core (ITRS) and extrapolates contemporary
/// Mobile DDR datasheets; the absolute IDD values below are calibrated so the
/// bottom-up energy model reproduces the paper's reported operating points
/// (150 mW 720p/1ch, 345 mW 1080p30/4ch, ~1.28 W 2160p/8ch at 400 MHz).
/// See EXPERIMENTS.md for the calibration record.
struct PowerSpec {
  double vdd = 1.35;           // core voltage (projected, paper Section III)
  double freq_ref_mhz = 200;   // frequency the IDD values are specified at

  double idd0_ma = 45.0;    // one ACT-PRE pair per tRC
  double idd2n_ma = 16.0;   // precharge standby
  double idd2p_ma = 0.45;   // precharge power-down
  double idd3n_ma = 26.0;   // active standby
  double idd3p_ma = 1.4;    // active power-down
  double idd4r_ma = 88.0;   // continuous read burst (at freq_ref)
  double idd4w_ma = 84.0;   // continuous write burst (at freq_ref)
  double idd5_ma = 120.0;   // auto-refresh (averaged over tRFC)
  double idd6_ma = 0.25;    // self refresh (cells kept alive internally)

  /// Burst currents are per-transition and scale with clock frequency;
  /// fixed-duration events (ACT/PRE pair over tRC, refresh over tRFC) and
  /// standby currents do not.
  [[nodiscard]] double idd4r_at(double freq_mhz) const {
    return idd4r_ma * freq_mhz / freq_ref_mhz;
  }
  [[nodiscard]] double idd4w_at(double freq_mhz) const {
    return idd4w_ma * freq_mhz / freq_ref_mhz;
  }
};

/// Full device spec: organization + timing + power.
struct DeviceSpec {
  OrgSpec org;
  TimingSpec timing;
  PowerSpec power;

  /// The paper's estimated next-generation mobile DDR SDRAM device:
  /// 512 Mb x32 four-bank cluster, 1.35 V, 200-533 MHz DDR.
  [[nodiscard]] static DeviceSpec next_gen_mobile_ddr() { return DeviceSpec{}; }

  /// A contemporary (2008) Mobile DDR SDRAM: same organization, 1.8 V core,
  /// clock capped at 200 MHz, higher datasheet currents. The "what you could
  /// buy when the paper was written" comparison point.
  [[nodiscard]] static DeviceSpec mobile_ddr_2008();

  /// A hypothetical eight-bank, tFAW-constrained follow-on generation
  /// (DDR3-style core) for the future-work ablation: more banks to hide
  /// row cycles, but a four-activate window limit.
  [[nodiscard]] static DeviceSpec eight_bank_future();

  /// A Wide I/O-style stacked DRAM channel: 128-bit SDR interface at modest
  /// clocks over TSVs - the other way die stacking can buy bandwidth
  /// (width instead of the paper's channel count x clock).
  [[nodiscard]] static DeviceSpec wide_io_like();
};

/// Cycle-domain timing at a concrete clock frequency. Every parameter is a
/// whole number of clock cycles (ceil of the ns value), commands issue on
/// clock edges, and data moves on both edges (DDR).
struct DerivedTiming {
  Frequency freq;
  Time clk;        // clock period
  int cl = 0;      // read latency, cycles
  int cwl = 0;     // write latency, cycles
  int burst_ck = 0;  // data bus occupancy per burst: BL/2 (DDR)
  int trcd = 0;
  int trp = 0;
  int tras = 0;
  int trc = 0;
  int trrd = 0;
  int twr = 0;
  int twtr = 0;
  int trtp = 0;
  int trfc = 0;
  std::int64_t trefi = 0;
  int txp = 0;
  int tcke = 0;
  int txsr = 0;
  int tfaw = 0;  // 0 = no four-activate window

  [[nodiscard]] Time cycles(std::int64_t n) const { return Time{clk.ps() * n}; }

  /// False for refresh-free devices (tREFI_ns = 0, e.g. the PCM-like class):
  /// the periodic-refresh and self-refresh machinery is disabled entirely.
  [[nodiscard]] bool has_refresh() const { return trefi > 0; }

  /// Peak data bandwidth of one channel in bytes/second: one burst of
  /// bytes_per_burst every burst_ck clocks.
  [[nodiscard]] double peak_bandwidth_bytes_per_s(const OrgSpec& org) const {
    return freq.hz() * org.bytes_per_burst() / burst_ck;
  }

  [[nodiscard]] static DerivedTiming derive(const TimingSpec& t, Frequency f);
};

}  // namespace mcm::dram
