#include "dram/energy.hpp"

#include <algorithm>

namespace mcm::dram {

EnergyModel::EnergyModel(const PowerSpec& p, const DerivedTiming& d) {
  const double freq = d.freq.mhz();
  // Actual durations at the derived cycle counts (ns); these can be slightly
  // longer than the ns-domain minima because cycles round up.
  const double trc_ns = (d.cycles(d.trc)).ns();
  const double tras_ns = (d.cycles(d.tras)).ns();
  const double trfc_ns = (d.cycles(d.trfc)).ns();
  const double burst_ns = (d.cycles(d.burst_ck)).ns();

  // One ACT-PRE pair: IDD0 is the average current when activating and
  // precharging one row every tRC; subtract the background current the
  // residency accounting already charges for that window.
  e_act_pre_pj_ = p.vdd * std::max(0.0, p.idd0_ma * trc_ns - p.idd3n_ma * tras_ns -
                                            p.idd2n_ma * (trc_ns - tras_ns));

  // Burst energies: incremental current over active standby for the cycles
  // the data bus is actually transferring.
  e_read_pj_ = p.vdd * std::max(0.0, p.idd4r_at(freq) - p.idd3n_ma) * burst_ns;
  e_write_pj_ = p.vdd * std::max(0.0, p.idd4w_at(freq) - p.idd3n_ma) * burst_ns;

  // Refresh: a fixed-charge event over tRFC; incremental over precharge
  // standby. IDD5 is frequency-independent (fixed charge restored).
  e_refresh_pj_ = p.vdd * std::max(0.0, p.idd5_ma - p.idd2n_ma) * trfc_ns;

  p_act_stby_mw_ = p.vdd * p.idd3n_ma;
  p_pre_stby_mw_ = p.vdd * p.idd2n_ma;
  p_act_pd_mw_ = p.vdd * p.idd3p_ma;
  p_pd_mw_ = p.vdd * p.idd2p_ma;
  p_sr_mw_ = p.vdd * p.idd6_ma;
}

EnergyBreakdown EnergyModel::tally(const EnergyLedger& ledger) const {
  EnergyBreakdown b;
  b.act_pre_pj = static_cast<double>(ledger.n_act) * e_act_pre_pj_;
  b.read_pj = static_cast<double>(ledger.n_rd) * e_read_pj_;
  b.write_pj = static_cast<double>(ledger.n_wr) * e_write_pj_;
  b.refresh_pj = static_cast<double>(ledger.n_ref) * e_refresh_pj_;
  // mW x us = nJ; convert through ns for pJ (mW x ns = pJ).
  b.active_standby_pj = p_act_stby_mw_ * ledger.t_active_standby.ns();
  b.precharge_standby_pj = p_pre_stby_mw_ * ledger.t_precharge_standby.ns();
  b.active_powerdown_pj = p_act_pd_mw_ * ledger.t_active_powerdown.ns();
  b.powerdown_pj = p_pd_mw_ * ledger.t_powerdown.ns();
  b.selfrefresh_pj = p_sr_mw_ * ledger.t_selfrefresh.ns();
  return b;
}

}  // namespace mcm::dram
