// Self-profiling: near-zero-overhead scoped phase timers and contention
// counters for the engine itself (host-side cost structure), as opposed to
// the *simulated* quantities in obs/metrics. Recording is off by default;
// the cost of a disabled instrumentation point is one relaxed atomic load
// and a predictable branch. Enable process-wide with MCM_PROF=1 or at
// runtime with prof::set_enabled(true) (FrameSimOptions::profile does this
// for one run).
//
// Model:
//  - A *phase* is an interned hierarchical name ("engine/w2/handoff_wait",
//    "sim/feed", "verify/compare"). Ids are stable for the process lifetime.
//  - `ScopedTimer` records an RAII span (start/duration + nesting, so self
//    time = wall minus enclosed spans) into a per-thread spool. Use it for
//    coarse phases only - every span costs two steady_clock reads.
//  - `tally(phase, dur_ns, calls)` adds a measured duration to a phase
//    accumulator without emitting a span: the hot-loop form used for stall
//    episodes the engine times itself (handoff waits, ring-full waits,
//    barrier waits).
//  - `count(phase, n)` bumps a pure event counter (requests retired,
//    cache hits); `value(phase, v)` samples a dimensionless value into the
//    phase's log2 histogram (ring occupancy).
//  - Spools are merged into one `ProfileReport` by `collect()`: per-phase
//    call counts, wall/self time, max, and log2-interpolated p50/p95, plus
//    the raw spans for Chrome/Perfetto export. Aggregation is pure integer
//    summation keyed by phase name, so a report is deterministic for a
//    given set of recorded events regardless of thread scheduling.
//
// Profiling never feeds back into simulation decisions, so simulated
// results (reports, traces, stats) are byte-identical with recording on.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace mcm::obs::prof {

using PhaseId = std::uint32_t;

/// Log2 duration/value buckets per phase: bucket b counts samples in
/// [2^(b-1), 2^b) (bucket 0: values <= 1). 48 buckets cover ~78 hours in
/// nanoseconds.
inline constexpr std::size_t kLogBuckets = 48;

namespace detail {
std::atomic<bool>& enabled_flag();
}  // namespace detail

/// True when recording is on (MCM_PROF=1 at first query, or set_enabled).
[[nodiscard]] inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

/// Runtime override; latches until changed again.
void set_enabled(bool on);

/// Pure read of MCM_PROF (no latch): "1"/"on"/"ON" request profiling.
[[nodiscard]] bool env_requests_profiling();

/// Intern a phase name; thread-safe, id stable for the process lifetime.
[[nodiscard]] PhaseId phase_id(std::string_view name);

/// steady_clock now, in nanoseconds since an arbitrary epoch.
[[nodiscard]] std::int64_t now_ns();

/// Add a self-measured duration (ns) to `phase`: `calls` episodes totalling
/// `dur_ns`. No span is emitted. No-op while disabled.
void tally(PhaseId phase, std::int64_t dur_ns, std::uint64_t calls = 1);

/// Bump a pure event counter. No-op while disabled.
void count(PhaseId phase, std::uint64_t delta);

/// Sample a dimensionless value (e.g. ring occupancy) into the phase's
/// log2 histogram. No-op while disabled.
void value(PhaseId phase, std::int64_t v);

/// Label the calling thread in Chrome-trace exports ("engine/w3").
void set_thread_label(std::string label);

/// RAII span: records begin/end into the calling thread's spool and
/// maintains the nesting stack for self-time attribution. Near-free when
/// profiling is disabled (one relaxed load + branch).
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseId phase) {
    if (enabled()) {
      active_ = true;
      begin(phase);
    }
  }
  ~ScopedTimer() {
    if (active_) end();
  }
  /// Close the span before scope exit (idempotent).
  void stop() {
    if (active_) {
      active_ = false;
      end();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void begin(PhaseId phase);
  void end();
  bool active_ = false;
};

/// One aggregated phase row of a collected profile.
struct ProfilePhase {
  std::string name;
  std::uint64_t calls = 0;
  std::int64_t wall_ns = 0;  // sum of span/tally durations
  std::int64_t self_ns = 0;  // wall minus enclosed spans (== wall for tallies)
  std::int64_t max_ns = 0;   // largest single sample
  double p50 = 0.0;          // log2-interpolated percentiles of samples
  double p95 = 0.0;          // (ns for timers, raw units for value())
};

/// One recorded span (Chrome-trace "complete event").
struct ProfileSpan {
  std::uint32_t tid = 0;     // spool registration index
  std::uint32_t phase = 0;   // index into ProfileReport::phases
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

struct ProfileReport {
  std::vector<ProfilePhase> phases;  // sorted by name
  std::vector<ProfileSpan> spans;    // sorted by (start, tid, emission seq)
  std::vector<std::pair<std::uint32_t, std::string>> thread_labels;
  std::uint64_t dropped_spans = 0;

  [[nodiscard]] const ProfilePhase* find(std::string_view name) const;

  /// mcm.prof/v1 document; `with_spans` embeds the span list so the file
  /// is self-contained for `mcm_prof trace` / Perfetto conversion.
  [[nodiscard]] JsonValue to_json(bool with_spans = true) const;

  /// Chrome trace_events JSON ({"traceEvents": [...]}) loadable in
  /// chrome://tracing and ui.perfetto.dev.
  void write_chrome_trace(std::ostream& out) const;
};

/// Merge every thread spool into one report. `reset` clears all recorded
/// data (phase ids and spool registrations persist). Call only while no
/// other thread is actively recording - the recording fast path is
/// deliberately lock-free.
[[nodiscard]] ProfileReport collect(bool reset = true);

/// Parse an mcm.prof/v1 document back into a report (mcm_prof CLI, tests).
/// Returns false on schema mismatch.
bool profile_from_json(const JsonValue& doc, ProfileReport& out);

}  // namespace mcm::obs::prof
