// Metrics registry: named counters, gauges, and histograms registered by
// component (per-channel, per-bank, interleaver, ...), snapshotted on demand
// and exported as JSON or CSV. Names are hierarchical slash-paths, e.g.
// "ch0/bank2/accesses" or "interleaver/routed/ch3"; the registry keeps them
// in sorted order so exports diff cleanly between runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "obs/json.hpp"

namespace mcm::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr std::string_view to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Monotonic event count. Updates are relaxed atomics, so concurrent
/// workers may increment the same counter without a data race.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time scalar. Last writer wins under concurrent sets.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// One row of a registry snapshot. Counters/gauges carry `value`; histograms
/// carry the distribution summary (count/mean/min/max/stddev + percentiles).
struct MetricEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Registration and snapshot/export are guarded by an internal mutex, so
/// worker threads may register and resolve metrics concurrently; returned
/// references stay valid for the registry's lifetime. Counter/Gauge updates
/// through those references are atomic; a Histogram returned by the
/// get-or-create overload is NOT internally synchronized — keep one writer
/// per histogram (the publish-on-collect copy overload is always safe).
class MetricsRegistry {
 public:
  /// Get-or-create. Registering an existing name returns the same object;
  /// registering it as a different kind throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets);

  /// Register a histogram by copying an already-populated one (used when a
  /// component keeps its own Histogram and publishes it on collect).
  void histogram(const std::string& name, const Histogram& h);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const;

  /// Flat snapshot, sorted by name.
  [[nodiscard]] std::vector<MetricEntry> snapshot() const;

  /// {"name": {"kind": ..., ...}, ...} — histograms include bucket edges and
  /// counts so external tools can re-derive any quantile.
  [[nodiscard]] JsonValue to_json(bool with_buckets = false) const;
  void write_json(std::ostream& out, bool with_buckets = false) const;

  /// name,kind,value,count,mean,min,max,stddev,p50,p95,p99 rows.
  void write_csv(std::ostream& out) const;

 private:
  struct Metric {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& get_or_create(const std::string& name, MetricKind kind);

  mutable std::mutex mutex_;               // guards the map, not the metrics
  std::map<std::string, Metric> metrics_;  // sorted => deterministic exports
};

}  // namespace mcm::obs
