#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mcm::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (type() == Type::kNull) v_ = Object{};
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(std::string(key), JsonValue{});
  return obj.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type() != Type::kObject) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::push(JsonValue v) {
  if (type() == Type::kNull) v_ = Array{};
  auto& arr = std::get<Array>(v_);
  arr.push_back(std::move(v));
  return arr.back();
}

std::size_t JsonValue::size() const {
  if (type() == Type::kArray) return std::get<Array>(v_).size();
  if (type() == Type::kObject) return std::get<Object>(v_).size();
  return 0;
}

namespace {

void write_double(std::ostream& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null keeps parsers happy
    out << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", d);
  out << buf;
  // Keep a numeric-looking token (12 significant digits never needs more).
}

void write_newline_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

void JsonValue::dump_impl(std::ostream& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: out << "null"; break;
    case Type::kBool: out << (std::get<bool>(v_) ? "true" : "false"); break;
    case Type::kInt: out << std::get<std::int64_t>(v_); break;
    case Type::kUint: out << std::get<std::uint64_t>(v_); break;
    case Type::kDouble: write_double(out, std::get<double>(v_)); break;
    case Type::kString: out << '"' << json_escape(std::get<std::string>(v_)) << '"'; break;
    case Type::kArray: {
      const auto& arr = std::get<Array>(v_);
      if (arr.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        arr[i].dump_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = std::get<Object>(v_);
      if (obj.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        out << '"' << json_escape(obj[i].first) << "\":";
        if (indent > 0) out << ' ';
        obj[i].second.dump_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << '}';
      break;
    }
  }
}

void JsonValue::dump(std::ostream& out, int indent) const {
  dump_impl(out, indent, 0);
}

std::string JsonValue::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

}  // namespace mcm::obs
