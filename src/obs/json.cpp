#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mcm::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (type() == Type::kNull) v_ = Object{};
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(std::string(key), JsonValue{});
  return obj.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type() != Type::kObject) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::push(JsonValue v) {
  if (type() == Type::kNull) v_ = Array{};
  auto& arr = std::get<Array>(v_);
  arr.push_back(std::move(v));
  return arr.back();
}

std::size_t JsonValue::size() const {
  if (type() == Type::kArray) return std::get<Array>(v_).size();
  if (type() == Type::kObject) return std::get<Object>(v_).size();
  return 0;
}

const JsonValue* JsonValue::at(std::size_t i) const {
  if (type() != Type::kArray) return nullptr;
  const auto& arr = std::get<Array>(v_);
  return i < arr.size() ? &arr[i] : nullptr;
}

bool JsonValue::as_bool(bool fallback) const {
  if (type() == Type::kBool) return std::get<bool>(v_);
  return fallback;
}

std::int64_t JsonValue::as_int(std::int64_t fallback) const {
  switch (type()) {
    case Type::kInt: return std::get<std::int64_t>(v_);
    case Type::kUint: return static_cast<std::int64_t>(std::get<std::uint64_t>(v_));
    case Type::kDouble: return static_cast<std::int64_t>(std::get<double>(v_));
    default: return fallback;
  }
}

std::uint64_t JsonValue::as_uint(std::uint64_t fallback) const {
  switch (type()) {
    case Type::kInt: return static_cast<std::uint64_t>(std::get<std::int64_t>(v_));
    case Type::kUint: return std::get<std::uint64_t>(v_);
    case Type::kDouble: return static_cast<std::uint64_t>(std::get<double>(v_));
    default: return fallback;
  }
}

double JsonValue::as_double(double fallback) const {
  switch (type()) {
    case Type::kInt: return static_cast<double>(std::get<std::int64_t>(v_));
    case Type::kUint: return static_cast<double>(std::get<std::uint64_t>(v_));
    case Type::kDouble: return std::get<double>(v_);
    default: return fallback;
  }
}

std::string JsonValue::as_string(std::string fallback) const {
  if (type() == Type::kString) return std::get<std::string>(v_);
  return fallback;
}

namespace {

void write_double(std::ostream& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null keeps parsers happy
    out << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", d);
  out << buf;
  // Keep a numeric-looking token (12 significant digits never needs more).
}

void write_newline_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

void JsonValue::dump_impl(std::ostream& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull: out << "null"; break;
    case Type::kBool: out << (std::get<bool>(v_) ? "true" : "false"); break;
    case Type::kInt: out << std::get<std::int64_t>(v_); break;
    case Type::kUint: out << std::get<std::uint64_t>(v_); break;
    case Type::kDouble: write_double(out, std::get<double>(v_)); break;
    case Type::kString: out << '"' << json_escape(std::get<std::string>(v_)) << '"'; break;
    case Type::kArray: {
      const auto& arr = std::get<Array>(v_);
      if (arr.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        arr[i].dump_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = std::get<Object>(v_);
      if (obj.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out << ',';
        write_newline_indent(out, indent, depth + 1);
        out << '"' << json_escape(obj[i].first) << "\":";
        if (indent > 0) out << ' ';
        obj[i].second.dump_impl(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out << '}';
      break;
    }
  }
}

namespace {

/// Recursive-descent parser over the writer's output subset. Depth-limited
/// so adversarial input cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error != nullptr) *error = err_ + " at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* what) {
    err_ = what;
    return false;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The writer only emits \u00xx control escapes; decode the
          // low byte and pass anything else through as '?'.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    bool is_double = false;
    if (consume('-')) {
    }
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected number");
    const std::string tok(s_.substr(start, pos_ - start));
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      if (tok[0] == '-') {
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        if (end == tok.c_str() + tok.size() && errno == 0) {
          out = JsonValue{static_cast<std::int64_t>(v)};
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (end == tok.c_str() + tok.size() && errno == 0) {
          out = JsonValue{static_cast<std::uint64_t>(v)};
          return true;
        }
      }
      errno = 0;  // integer overflow: fall through to double
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("malformed number");
    out = JsonValue{d};
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == 'n') return literal("null") ? (out = JsonValue{}, true) : fail("bad literal");
    if (c == 't') return literal("true") ? (out = JsonValue{true}, true) : fail("bad literal");
    if (c == 'f') return literal("false") ? (out = JsonValue{false}, true) : fail("bad literal");
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = JsonValue{std::move(s)};
      return true;
    }
    if (c == '[') {
      ++pos_;
      out = JsonValue::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue elem;
        if (!parse_value(elem, depth + 1)) return false;
        out.push(std::move(elem));
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      out = JsonValue::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        JsonValue elem;
        if (!parse_value(elem, depth + 1)) return false;
        out[key] = std::move(elem);
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
    }
    return parse_number(out);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_ = "parse error";
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

void JsonValue::dump(std::ostream& out, int indent) const {
  dump_impl(out, indent, 0);
}

std::string JsonValue::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

}  // namespace mcm::obs
