// RunReport: the one machine-readable result funnel for benches and
// examples. A report stamps the run configuration (channels, frequency,
// format, policies), any number of labelled result points, and an optional
// metrics snapshot, then writes a deterministic JSON document next to the
// human-readable table output.
//
// Destination resolution (write_default):
//   MCM_REPORT_DIR=off   -> disabled (returns empty path)
//   MCM_REPORT_DIR=<dir> -> <dir>/<name>.report.json
//   unset                -> ./<name>.report.json
#pragma once

#include <ostream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace mcm::obs {

class RunReport {
 public:
  /// `name` identifies the run (e.g. "fig3"); it names the output file and
  /// is stamped into the document.
  explicit RunReport(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// The configuration object ("config" member) — set key/values freely.
  [[nodiscard]] JsonValue& config() { return root_["config"]; }

  /// Append a result point to the "points" array and return it for filling.
  JsonValue& add_point(std::string_view label);

  /// Attach a metrics-registry snapshot as the "metrics" member.
  void add_metrics(const MetricsRegistry& reg, bool with_buckets = false);

  /// Free-form access to the whole document.
  [[nodiscard]] JsonValue& root() { return root_; }
  [[nodiscard]] const JsonValue& root() const { return root_; }

  void write(std::ostream& out) const;
  [[nodiscard]] bool write_file(const std::string& path) const;

  /// Resolve the default destination (see header comment); empty = disabled.
  [[nodiscard]] std::string default_path() const;

  /// Write to the default destination. Returns the path written, or an
  /// empty string when disabled or on I/O failure.
  std::string write_default() const;

 private:
  std::string name_;
  JsonValue root_ = JsonValue::object();
};

}  // namespace mcm::obs
