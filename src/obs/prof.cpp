#include "obs/prof.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace mcm::obs::prof {
namespace {

// Per-spool span cap: bounds memory when MCM_PROF=1 stays on across a long
// multi-run process; overflow is counted, never silently lost.
constexpr std::size_t kMaxSpansPerSpool = std::size_t{1} << 18;

struct PhaseAcc {
  std::uint64_t calls = 0;
  std::int64_t wall_ns = 0;
  std::int64_t self_ns = 0;
  std::int64_t max_ns = 0;
  std::array<std::uint64_t, kLogBuckets> hist{};

  [[nodiscard]] bool empty() const {
    return calls == 0 && wall_ns == 0 && self_ns == 0;
  }

  void merge(const PhaseAcc& rhs) {
    calls += rhs.calls;
    wall_ns += rhs.wall_ns;
    self_ns += rhs.self_ns;
    max_ns = std::max(max_ns, rhs.max_ns);
    for (std::size_t i = 0; i < kLogBuckets; ++i) hist[i] += rhs.hist[i];
  }
};

[[nodiscard]] std::size_t log_bucket(std::int64_t v) {
  if (v <= 1) return 0;
  const auto b = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(v - 1)));
  return std::min(b, kLogBuckets - 1);
}

void hist_sample(PhaseAcc& a, std::int64_t v, std::uint64_t weight = 1) {
  a.hist[log_bucket(v)] += weight;
  a.max_ns = std::max(a.max_ns, v);
}

/// Quantile of a log2 histogram, linearly interpolated inside the bucket.
[[nodiscard]] double hist_percentile(
    const std::array<std::uint64_t, kLogBuckets>& hist, double p) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : hist) total += c;
  if (total == 0) return 0.0;
  const double target = p * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < kLogBuckets; ++b) {
    if (hist[b] == 0) continue;
    const double next = cum + static_cast<double>(hist[b]);
    if (target <= next) {
      const double lo = b == 0 ? 0.0 : static_cast<double>(std::int64_t{1} << (b - 1));
      const double hi = static_cast<double>(std::int64_t{1} << b);
      const double frac = (target - cum) / static_cast<double>(hist[b]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return static_cast<double>(std::int64_t{1} << (kLogBuckets - 1));
}

struct RawSpan {
  PhaseId phase = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

struct OpenFrame {
  PhaseId phase = 0;
  std::int64_t start_ns = 0;
  std::int64_t child_ns = 0;
};

struct Spool {
  std::uint32_t tid = 0;
  std::string label;
  std::vector<PhaseAcc> accs;  // indexed by PhaseId, grown on demand
  std::vector<RawSpan> spans;
  std::vector<OpenFrame> stack;
  std::uint64_t dropped = 0;

  PhaseAcc& acc(PhaseId phase) {
    if (phase >= accs.size()) accs.resize(phase + 1);
    return accs[phase];
  }

  void reset() {
    accs.assign(accs.size(), PhaseAcc{});
    spans.clear();
    stack.clear();
    dropped = 0;
  }
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PhaseId, std::less<>> ids;
  std::vector<std::string> names;                // indexed by PhaseId
  std::vector<std::unique_ptr<Spool>> spools;    // registration order
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: spools outlive any thread
  return *r;
}

thread_local Spool* tls_spool = nullptr;

Spool& local_spool() {
  if (tls_spool == nullptr) {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    auto sp = std::make_unique<Spool>();
    sp->tid = static_cast<std::uint32_t>(r.spools.size());
    tls_spool = sp.get();
    r.spools.push_back(std::move(sp));
  }
  return *tls_spool;
}

}  // namespace

namespace detail {
std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_requests_profiling()};
  return flag;
}
}  // namespace detail

bool env_requests_profiling() {
  const char* env = std::getenv("MCM_PROF");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "1" || v == "on" || v == "ON";
}

void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

PhaseId phase_id(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  const auto it = r.ids.find(name);
  if (it != r.ids.end()) return it->second;
  const auto id = static_cast<PhaseId>(r.names.size());
  r.names.emplace_back(name);
  r.ids.emplace(std::string(name), id);
  return id;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void tally(PhaseId phase, std::int64_t dur_ns, std::uint64_t calls) {
  if (!enabled() || calls == 0) return;
  PhaseAcc& a = local_spool().acc(phase);
  a.calls += calls;
  a.wall_ns += dur_ns;
  a.self_ns += dur_ns;
  hist_sample(a, calls == 1 ? dur_ns : dur_ns / static_cast<std::int64_t>(calls),
              calls);
}

void count(PhaseId phase, std::uint64_t delta) {
  if (!enabled() || delta == 0) return;
  local_spool().acc(phase).calls += delta;
}

void value(PhaseId phase, std::int64_t v) {
  if (!enabled()) return;
  PhaseAcc& a = local_spool().acc(phase);
  a.calls += 1;
  hist_sample(a, v);
}

void set_thread_label(std::string label) {
  if (!enabled()) return;
  local_spool().label = std::move(label);
}

void ScopedTimer::begin(PhaseId phase) {
  local_spool().stack.push_back(OpenFrame{phase, now_ns(), 0});
}

void ScopedTimer::end() {
  Spool& sp = local_spool();
  if (sp.stack.empty()) return;  // a collect(reset) raced this live scope
  const OpenFrame f = sp.stack.back();
  sp.stack.pop_back();
  const std::int64_t dur = now_ns() - f.start_ns;
  PhaseAcc& a = sp.acc(f.phase);
  a.calls += 1;
  a.wall_ns += dur;
  a.self_ns += dur - f.child_ns;
  hist_sample(a, dur);
  if (!sp.stack.empty()) sp.stack.back().child_ns += dur;
  if (sp.spans.size() < kMaxSpansPerSpool) {
    sp.spans.push_back(RawSpan{f.phase, f.start_ns, dur});
  } else {
    ++sp.dropped;
  }
}

const ProfilePhase* ProfileReport::find(std::string_view name) const {
  for (const ProfilePhase& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

ProfileReport collect(bool reset) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);

  std::vector<PhaseAcc> merged(r.names.size());
  struct TaggedSpan {
    std::uint32_t tid;
    RawSpan s;
  };
  std::vector<TaggedSpan> raw_spans;
  ProfileReport rep;
  for (const auto& spp : r.spools) {
    const Spool& sp = *spp;
    for (std::size_t ph = 0; ph < sp.accs.size(); ++ph) {
      merged[ph].merge(sp.accs[ph]);
    }
    for (const RawSpan& s : sp.spans) raw_spans.push_back(TaggedSpan{sp.tid, s});
    rep.dropped_spans += sp.dropped;
    if (!sp.spans.empty() || !sp.label.empty()) {
      rep.thread_labels.emplace_back(
          sp.tid, sp.label.empty() ? "t" + std::to_string(sp.tid) : sp.label);
    }
  }

  // Phase rows sorted by name; remember PhaseId -> row for span remapping.
  std::vector<PhaseId> with_data;
  for (PhaseId ph = 0; ph < merged.size(); ++ph) {
    if (!merged[ph].empty()) with_data.push_back(ph);
  }
  std::sort(with_data.begin(), with_data.end(),
            [&](PhaseId a, PhaseId b) { return r.names[a] < r.names[b]; });
  std::vector<std::uint32_t> row_of(merged.size(), 0);
  rep.phases.reserve(with_data.size());
  for (const PhaseId ph : with_data) {
    const PhaseAcc& a = merged[ph];
    ProfilePhase row;
    row.name = r.names[ph];
    row.calls = a.calls;
    row.wall_ns = a.wall_ns;
    row.self_ns = a.self_ns;
    row.max_ns = a.max_ns;
    row.p50 = hist_percentile(a.hist, 0.50);
    row.p95 = hist_percentile(a.hist, 0.95);
    row_of[ph] = static_cast<std::uint32_t>(rep.phases.size());
    rep.phases.push_back(std::move(row));
  }

  std::stable_sort(raw_spans.begin(), raw_spans.end(),
                   [](const TaggedSpan& a, const TaggedSpan& b) {
                     if (a.s.start_ns != b.s.start_ns) {
                       return a.s.start_ns < b.s.start_ns;
                     }
                     return a.tid < b.tid;
                   });
  rep.spans.reserve(raw_spans.size());
  for (const TaggedSpan& t : raw_spans) {
    rep.spans.push_back(
        ProfileSpan{t.tid, row_of[t.s.phase], t.s.start_ns, t.s.dur_ns});
  }

  if (reset) {
    for (const auto& spp : r.spools) spp->reset();
  }
  return rep;
}

JsonValue ProfileReport::to_json(bool with_spans) const {
  JsonValue doc = JsonValue::object();
  doc["schema"] = "mcm.prof/v1";
  doc["version"] = 1;
  JsonValue& ph = doc["phases"];
  ph = JsonValue::array();
  for (const ProfilePhase& p : phases) {
    JsonValue row = JsonValue::object();
    row["name"] = p.name;
    row["calls"] = p.calls;
    row["wall_ns"] = p.wall_ns;
    row["self_ns"] = p.self_ns;
    row["max_ns"] = p.max_ns;
    row["p50"] = p.p50;
    row["p95"] = p.p95;
    ph.push(std::move(row));
  }
  JsonValue& threads = doc["threads"];
  threads = JsonValue::array();
  for (const auto& [tid, label] : thread_labels) {
    JsonValue row = JsonValue::object();
    row["tid"] = tid;
    row["label"] = label;
    threads.push(std::move(row));
  }
  doc["dropped_spans"] = dropped_spans;
  if (with_spans) {
    JsonValue& sp = doc["spans"];
    sp = JsonValue::array();
    for (const ProfileSpan& s : spans) {
      JsonValue row = JsonValue::object();
      row["ph"] = s.phase;  // index into `phases`
      row["tid"] = s.tid;
      row["ts_ns"] = s.start_ns;
      row["dur_ns"] = s.dur_ns;
      sp.push(std::move(row));
    }
  }
  return doc;
}

void ProfileReport::write_chrome_trace(std::ostream& out) const {
  // Normalize timestamps so the trace starts near zero (chrome://tracing
  // renders absolute steady_clock epochs poorly).
  std::int64_t t0 = 0;
  for (const ProfileSpan& s : spans) {
    if (t0 == 0 || s.start_ns < t0) t0 = s.start_ns;
  }
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const auto& [tid, label] : thread_labels) {
    sep();
    out << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tid
        << R"(,"args":{"name":")" << json_escape(label) << "\"}}";
  }
  char buf[64];
  for (const ProfileSpan& s : spans) {
    sep();
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.start_ns - t0) / 1e3);
    out << R"({"name":")" << json_escape(phases[s.phase].name)
        << R"(","ph":"X","pid":1,"tid":)" << s.tid << ",\"ts\":" << buf;
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(s.dur_ns) / 1e3);
    out << ",\"dur\":" << buf << "}";
  }
  out << "\n]}\n";
  out.flush();
}

bool profile_from_json(const JsonValue& doc, ProfileReport& out) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "mcm.prof/v1") return false;
  out = ProfileReport{};
  if (const JsonValue* phases = doc.find("phases"); phases != nullptr) {
    for (std::size_t i = 0; i < phases->size(); ++i) {
      const JsonValue& row = *phases->at(i);
      ProfilePhase p;
      if (const auto* v = row.find("name")) p.name = v->as_string();
      if (const auto* v = row.find("calls")) p.calls = v->as_uint();
      if (const auto* v = row.find("wall_ns")) p.wall_ns = v->as_int();
      if (const auto* v = row.find("self_ns")) p.self_ns = v->as_int();
      if (const auto* v = row.find("max_ns")) p.max_ns = v->as_int();
      if (const auto* v = row.find("p50")) p.p50 = v->as_double();
      if (const auto* v = row.find("p95")) p.p95 = v->as_double();
      out.phases.push_back(std::move(p));
    }
  }
  if (const JsonValue* threads = doc.find("threads"); threads != nullptr) {
    for (std::size_t i = 0; i < threads->size(); ++i) {
      const JsonValue& row = *threads->at(i);
      const auto* tid = row.find("tid");
      const auto* label = row.find("label");
      out.thread_labels.emplace_back(
          tid != nullptr ? static_cast<std::uint32_t>(tid->as_uint()) : 0,
          label != nullptr ? label->as_string() : std::string());
    }
  }
  if (const JsonValue* dropped = doc.find("dropped_spans"); dropped != nullptr) {
    out.dropped_spans = dropped->as_uint();
  }
  if (const JsonValue* spans = doc.find("spans"); spans != nullptr) {
    for (std::size_t i = 0; i < spans->size(); ++i) {
      const JsonValue& row = *spans->at(i);
      ProfileSpan s;
      if (const auto* v = row.find("ph")) {
        s.phase = static_cast<std::uint32_t>(v->as_uint());
      }
      if (const auto* v = row.find("tid")) {
        s.tid = static_cast<std::uint32_t>(v->as_uint());
      }
      if (const auto* v = row.find("ts_ns")) s.start_ns = v->as_int();
      if (const auto* v = row.find("dur_ns")) s.dur_ns = v->as_int();
      if (s.phase >= out.phases.size()) return false;  // malformed reference
      out.spans.push_back(s);
    }
  }
  return true;
}

}  // namespace mcm::obs::prof
