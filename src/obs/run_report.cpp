#include "obs/run_report.hpp"

#include <cstdlib>
#include <fstream>
#include <utility>

namespace mcm::obs {

RunReport::RunReport(std::string name) : name_(std::move(name)) {
  root_["report"] = name_;
  root_["schema"] = "mcm.run_report/v1";
  root_["config"] = JsonValue::object();
  root_["points"] = JsonValue::array();
}

JsonValue& RunReport::add_point(std::string_view label) {
  JsonValue point = JsonValue::object();
  point["label"] = label;
  return root_["points"].push(std::move(point));
}

void RunReport::add_metrics(const MetricsRegistry& reg, bool with_buckets) {
  root_["metrics"] = reg.to_json(with_buckets);
}

void RunReport::write(std::ostream& out) const {
  root_.dump(out);
  out << '\n';
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return out.good();
}

std::string RunReport::default_path() const {
  const char* dir = std::getenv("MCM_REPORT_DIR");
  if (dir != nullptr && std::string_view(dir) == "off") return {};
  std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return base + "/" + name_ + ".report.json";
}

std::string RunReport::write_default() const {
  const std::string path = default_path();
  if (path.empty() || !write_file(path)) return {};
  return path;
}

}  // namespace mcm::obs
