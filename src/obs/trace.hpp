// Structured trace: an opt-in, low-overhead JSONL event stream of DRAM
// commands (ACT/RD/WR/PRE/REF/PDE/PDX/SRE/SRX with cycle timestamps and
// channel/bank/row) and request lifecycle spans (arrival -> first command ->
// data end). The controller writes through the abstract `TraceWriter`
// interface; the hot-path cost of a *disabled* writer is one null-pointer
// check in the controller.
//
// Two writers exist:
//  - `TraceSink` streams straight to an ostream through a fixed-capacity
//    staging buffer (the original single-threaded behavior).
//  - `TraceSpool` accumulates events in memory, one spool per channel, for
//    the channel-sharded simulator; `merge_trace_spools` then emits one
//    JSONL stream in canonical (time, channel, per-channel sequence) order,
//    which is byte-identical at any MCM_SIM_THREADS setting because each
//    channel's event sequence is.
//
// Schema (one JSON object per line, schema id "mcm.trace/v1"):
//   {"type":"meta","schema":"mcm.trace/v1","version":1}
//   {"type":"cmd","ch":0,"t_ps":2500,"cmd":"ACT","bank":1,"row":42}
//   {"type":"req","ch":0,"op":"RD","addr":4096,"arrival_ps":0,
//    "first_cmd_ps":2500,"done_ps":30000,"latency_ps":30000,"row_hit":0}
#pragma once

#include <cstdint>
#include <memory_resource>
#include <ostream>
#include <vector>

#include "common/units.hpp"
#include "dram/command.hpp"

namespace mcm::obs {

struct TraceEvent {
  enum class Kind : std::uint8_t { kCommand, kSpan } kind = Kind::kCommand;
  std::uint32_t channel = 0;
  // kCommand:
  Time at = Time::zero();
  dram::Command cmd = dram::Command::kActivate;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  // kSpan:
  std::uint64_t addr = 0;
  bool is_write = false;
  Time arrival = Time::zero();
  Time first_cmd = Time::zero();
  Time done = Time::zero();
  bool row_hit = false;

  /// Timestamp used for canonical cross-channel ordering: command issue
  /// edge for commands, data-end for request spans.
  [[nodiscard]] Time order_time() const {
    return kind == Kind::kCommand ? at : done;
  }
};

/// Abstract event consumer the controller traces into.
class TraceWriter {
 public:
  virtual ~TraceWriter() = default;

  /// One DRAM command edge on `channel`.
  virtual void command(std::uint32_t channel, Time at, dram::Command cmd,
                       std::uint32_t bank, std::uint32_t row) = 0;

  /// One request lifecycle span on `channel`.
  virtual void span(std::uint32_t channel, std::uint64_t addr, bool is_write,
                    Time arrival, Time first_cmd, Time done, bool row_hit) = 0;

  /// Whether this writer can discard events back to a mark() checkpoint.
  /// Streaming writers cannot (bytes already left the process); the sharded
  /// engine only speculates when every attached writer supports rewind.
  [[nodiscard]] virtual bool supports_rewind() const { return false; }

  /// Opaque checkpoint of the events recorded so far.
  [[nodiscard]] virtual std::uint64_t mark() const { return 0; }

  /// Discard every event recorded after `checkpoint`. Only meaningful when
  /// supports_rewind() is true.
  virtual void rewind(std::uint64_t checkpoint) { (void)checkpoint; }
};

/// Write the schema meta line that must open every trace stream.
void write_trace_meta(std::ostream& out);

/// Format one event as its JSONL line (newline included).
void write_trace_event(std::ostream& out, const TraceEvent& e);

/// Streams events to an ostream in emission order through a fixed staging
/// buffer; flushes when the buffer fills and on destruction.
class TraceSink final : public TraceWriter {
 public:
  /// `buffer_events` bounds the in-memory staging area; the sink flushes to
  /// `out` whenever it fills (and on destruction).
  explicit TraceSink(std::ostream& out, std::size_t buffer_events = 4096);
  ~TraceSink() override;

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void command(std::uint32_t channel, Time at, dram::Command cmd,
               std::uint32_t bank, std::uint32_t row) override;
  void span(std::uint32_t channel, std::uint64_t addr, bool is_write,
            Time arrival, Time first_cmd, Time done, bool row_hit) override;

  /// Format and write out all buffered events.
  void flush();

  [[nodiscard]] std::uint64_t events_recorded() const { return events_; }

 private:
  std::ostream& out_;
  std::vector<TraceEvent> buf_;
  std::size_t capacity_;
  std::uint64_t events_ = 0;
};

/// Accumulates one channel's events in memory (emission order). Not
/// thread-safe by itself; the sharded simulator gives each channel its own
/// spool, so no two threads ever write the same spool.
class TraceSpool final : public TraceWriter {
 public:
  /// Events live in `mem` when given (the frame simulator hands every spool
  /// a run-scoped FrameArena, so trace accumulation does no per-event heap
  /// traffic); default is the global new/delete resource.
  explicit TraceSpool(
      std::pmr::memory_resource* mem = std::pmr::get_default_resource())
      : events_(mem) {}

  void command(std::uint32_t channel, Time at, dram::Command cmd,
               std::uint32_t bank, std::uint32_t row) override;
  void span(std::uint32_t channel, std::uint64_t addr, bool is_write,
            Time arrival, Time first_cmd, Time done, bool row_hit) override;

  [[nodiscard]] const std::pmr::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t events_recorded() const { return events_.size(); }

  /// Spools buffer in memory, so speculative events can be truncated.
  [[nodiscard]] bool supports_rewind() const override { return true; }
  [[nodiscard]] std::uint64_t mark() const override { return events_.size(); }
  void rewind(std::uint64_t checkpoint) override {
    if (checkpoint < events_.size()) events_.resize(checkpoint);
  }

 private:
  std::pmr::vector<TraceEvent> events_;
};

/// Merge per-channel spools into one JSONL stream (meta line first) sorted
/// by (order_time, channel, per-channel emission sequence). Spool `i` is
/// treated as channel `i` for tie-breaking.
void merge_trace_spools(const std::vector<const TraceSpool*>& spools,
                        std::ostream& out);

}  // namespace mcm::obs
