// Structured trace sink: an opt-in, low-overhead JSONL event stream of DRAM
// commands (ACT/RD/WR/PRE/REF/PDE/PDX/SRE/SRX with cycle timestamps and
// channel/bank/row) and request lifecycle spans (arrival -> first command ->
// data end). Events are buffered in a fixed-capacity vector and formatted
// only when the buffer fills, so tracing a full 2160p30 frame stays
// tractable; the hot-path cost of a *disabled* sink is one null-pointer
// check in the controller.
//
// Schema (one JSON object per line, schema id "mcm.trace/v1"):
//   {"type":"meta","schema":"mcm.trace/v1","version":1}
//   {"type":"cmd","ch":0,"t_ps":2500,"cmd":"ACT","bank":1,"row":42}
//   {"type":"req","ch":0,"op":"RD","addr":4096,"arrival_ps":0,
//    "first_cmd_ps":2500,"done_ps":30000,"latency_ps":30000,"row_hit":0}
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/units.hpp"
#include "dram/command.hpp"

namespace mcm::obs {

class TraceSink {
 public:
  /// `buffer_events` bounds the in-memory staging area; the sink flushes to
  /// `out` whenever it fills (and on destruction).
  explicit TraceSink(std::ostream& out, std::size_t buffer_events = 4096);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// One DRAM command edge on `channel`.
  void command(std::uint32_t channel, Time at, dram::Command cmd,
               std::uint32_t bank, std::uint32_t row);

  /// One request lifecycle span on `channel`.
  void span(std::uint32_t channel, std::uint64_t addr, bool is_write,
            Time arrival, Time first_cmd, Time done, bool row_hit);

  /// Format and write out all buffered events.
  void flush();

  [[nodiscard]] std::uint64_t events_recorded() const { return events_; }

 private:
  struct Event {
    enum class Kind : std::uint8_t { kCommand, kSpan } kind = Kind::kCommand;
    std::uint32_t channel = 0;
    // kCommand:
    Time at = Time::zero();
    dram::Command cmd = dram::Command::kActivate;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    // kSpan:
    std::uint64_t addr = 0;
    bool is_write = false;
    Time arrival = Time::zero();
    Time first_cmd = Time::zero();
    Time done = Time::zero();
    bool row_hit = false;
  };

  void write_event(const Event& e);

  std::ostream& out_;
  std::vector<Event> buf_;
  std::size_t capacity_;
  std::uint64_t events_ = 0;
};

}  // namespace mcm::obs
