#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace mcm::obs {

void write_trace_meta(std::ostream& out) {
  out << R"({"type":"meta","schema":"mcm.trace/v1","version":1})" << '\n';
}

void write_trace_event(std::ostream& out, const TraceEvent& e) {
  char line[256];
  if (e.kind == TraceEvent::Kind::kCommand) {
    std::snprintf(line, sizeof line,
                  R"({"type":"cmd","ch":%u,"t_ps":%lld,"cmd":"%s","bank":%u,"row":%u})",
                  e.channel, static_cast<long long>(e.at.ps()),
                  std::string(dram::to_string(e.cmd)).c_str(), e.bank, e.row);
  } else {
    std::snprintf(line, sizeof line,
                  R"({"type":"req","ch":%u,"op":"%s","addr":%llu,"arrival_ps":%lld,)"
                  R"("first_cmd_ps":%lld,"done_ps":%lld,"latency_ps":%lld,"row_hit":%d})",
                  e.channel, e.is_write ? "WR" : "RD",
                  static_cast<unsigned long long>(e.addr),
                  static_cast<long long>(e.arrival.ps()),
                  static_cast<long long>(e.first_cmd.ps()),
                  static_cast<long long>(e.done.ps()),
                  static_cast<long long>((e.done - e.arrival).ps()), e.row_hit ? 1 : 0);
  }
  out << line << '\n';
}

TraceSink::TraceSink(std::ostream& out, std::size_t buffer_events)
    : out_(out), capacity_(std::max<std::size_t>(1, buffer_events)) {
  buf_.reserve(capacity_);
  write_trace_meta(out_);
}

TraceSink::~TraceSink() { flush(); }

void TraceSink::command(std::uint32_t channel, Time at, dram::Command cmd,
                        std::uint32_t bank, std::uint32_t row) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kCommand;
  e.channel = channel;
  e.at = at;
  e.cmd = cmd;
  e.bank = bank;
  e.row = row;
  buf_.push_back(e);
  ++events_;
  if (buf_.size() >= capacity_) flush();
}

void TraceSink::span(std::uint32_t channel, std::uint64_t addr, bool is_write,
                     Time arrival, Time first_cmd, Time done, bool row_hit) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpan;
  e.channel = channel;
  e.addr = addr;
  e.is_write = is_write;
  e.arrival = arrival;
  e.first_cmd = first_cmd;
  e.done = done;
  e.row_hit = row_hit;
  buf_.push_back(e);
  ++events_;
  if (buf_.size() >= capacity_) flush();
}

void TraceSink::flush() {
  for (const TraceEvent& e : buf_) write_trace_event(out_, e);
  buf_.clear();
  out_.flush();
}

void TraceSpool::command(std::uint32_t channel, Time at, dram::Command cmd,
                         std::uint32_t bank, std::uint32_t row) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kCommand;
  e.channel = channel;
  e.at = at;
  e.cmd = cmd;
  e.bank = bank;
  e.row = row;
  events_.push_back(e);
}

void TraceSpool::span(std::uint32_t channel, std::uint64_t addr, bool is_write,
                      Time arrival, Time first_cmd, Time done, bool row_hit) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpan;
  e.channel = channel;
  e.addr = addr;
  e.is_write = is_write;
  e.arrival = arrival;
  e.first_cmd = first_cmd;
  e.done = done;
  e.row_hit = row_hit;
  events_.push_back(e);
}

void merge_trace_spools(const std::vector<const TraceSpool*>& spools,
                        std::ostream& out) {
  // A channel's own stream is not monotone in order_time (a span's data-end
  // can postdate the next request's first command), so a streaming k-way
  // merge of the spools would not produce a sorted file. Sort indices into
  // the spools instead; per-channel memory is already proportional to the
  // event count, so this does not change the cost class.
  struct Ref {
    std::uint32_t spool = 0;
    std::uint32_t seq = 0;
  };
  std::size_t total = 0;
  for (const TraceSpool* s : spools) total += s->events().size();
  std::vector<Ref> order;
  order.reserve(total);
  for (std::uint32_t i = 0; i < spools.size(); ++i) {
    const std::size_t n = spools[i]->events().size();
    for (std::uint32_t k = 0; k < n; ++k) order.push_back(Ref{i, k});
  }
  std::sort(order.begin(), order.end(), [&](const Ref& a, const Ref& b) {
    const TraceEvent& ea = spools[a.spool]->events()[a.seq];
    const TraceEvent& eb = spools[b.spool]->events()[b.seq];
    if (ea.order_time() != eb.order_time()) {
      return ea.order_time() < eb.order_time();
    }
    if (a.spool != b.spool) return a.spool < b.spool;
    return a.seq < b.seq;
  });
  write_trace_meta(out);
  for (const Ref& r : order) {
    write_trace_event(out, spools[r.spool]->events()[r.seq]);
  }
  out.flush();
}

}  // namespace mcm::obs
