#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace mcm::obs {

TraceSink::TraceSink(std::ostream& out, std::size_t buffer_events)
    : out_(out), capacity_(std::max<std::size_t>(1, buffer_events)) {
  buf_.reserve(capacity_);
  out_ << R"({"type":"meta","schema":"mcm.trace/v1","version":1})" << '\n';
}

TraceSink::~TraceSink() { flush(); }

void TraceSink::command(std::uint32_t channel, Time at, dram::Command cmd,
                        std::uint32_t bank, std::uint32_t row) {
  Event e;
  e.kind = Event::Kind::kCommand;
  e.channel = channel;
  e.at = at;
  e.cmd = cmd;
  e.bank = bank;
  e.row = row;
  buf_.push_back(e);
  ++events_;
  if (buf_.size() >= capacity_) flush();
}

void TraceSink::span(std::uint32_t channel, std::uint64_t addr, bool is_write,
                     Time arrival, Time first_cmd, Time done, bool row_hit) {
  Event e;
  e.kind = Event::Kind::kSpan;
  e.channel = channel;
  e.addr = addr;
  e.is_write = is_write;
  e.arrival = arrival;
  e.first_cmd = first_cmd;
  e.done = done;
  e.row_hit = row_hit;
  buf_.push_back(e);
  ++events_;
  if (buf_.size() >= capacity_) flush();
}

void TraceSink::write_event(const Event& e) {
  char line[256];
  if (e.kind == Event::Kind::kCommand) {
    std::snprintf(line, sizeof line,
                  R"({"type":"cmd","ch":%u,"t_ps":%lld,"cmd":"%s","bank":%u,"row":%u})",
                  e.channel, static_cast<long long>(e.at.ps()),
                  std::string(dram::to_string(e.cmd)).c_str(), e.bank, e.row);
  } else {
    std::snprintf(line, sizeof line,
                  R"({"type":"req","ch":%u,"op":"%s","addr":%llu,"arrival_ps":%lld,)"
                  R"("first_cmd_ps":%lld,"done_ps":%lld,"latency_ps":%lld,"row_hit":%d})",
                  e.channel, e.is_write ? "WR" : "RD",
                  static_cast<unsigned long long>(e.addr),
                  static_cast<long long>(e.arrival.ps()),
                  static_cast<long long>(e.first_cmd.ps()),
                  static_cast<long long>(e.done.ps()),
                  static_cast<long long>((e.done - e.arrival).ps()), e.row_hit ? 1 : 0);
  }
  out_ << line << '\n';
}

void TraceSink::flush() {
  for (const Event& e : buf_) write_event(e);
  buf_.clear();
  out_.flush();
}

}  // namespace mcm::obs
