// Minimal ordered JSON document model for the observability layer: metric
// snapshots, run reports, and trace metadata all serialize through this one
// writer so escaping and number formatting stay consistent. Insertion order
// is preserved (reports diff cleanly) and output is deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mcm::obs {

/// Escape `s` as the body of a JSON string (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonValue;

/// Parse one JSON document (the subset this writer emits: null, bool,
/// integer, double, string with the escapes json_escape produces, array,
/// object). Returns nullopt and fills `error` (when given) on malformed
/// input or trailing garbage.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text,
                                                  std::string* error = nullptr);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : v_(std::monostate{}) {}
  JsonValue(bool b) : v_(b) {}                                      // NOLINT
  JsonValue(std::int64_t i) : v_(i) {}                              // NOLINT
  JsonValue(std::uint64_t u) : v_(u) {}                             // NOLINT
  JsonValue(int i) : v_(static_cast<std::int64_t>(i)) {}            // NOLINT
  JsonValue(unsigned i) : v_(static_cast<std::uint64_t>(i)) {}      // NOLINT
  JsonValue(double d) : v_(d) {}                                    // NOLINT
  JsonValue(std::string s) : v_(std::move(s)) {}                    // NOLINT
  JsonValue(std::string_view s) : v_(std::string(s)) {}             // NOLINT
  JsonValue(const char* s) : v_(std::string(s)) {}                  // NOLINT

  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.v_ = Object{};
    return v;
  }
  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.v_ = Array{};
    return v;
  }

  [[nodiscard]] Type type() const { return static_cast<Type>(v_.index()); }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }

  /// Object access: get-or-create the member `key` (converts a null value
  /// into an object on first use so `root["a"]["b"] = 1` just works).
  JsonValue& operator[](std::string_view key);

  /// Object lookup without creation; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Array append; returns a reference to the stored element.
  JsonValue& push(JsonValue v);

  [[nodiscard]] std::size_t size() const;

  /// Array element access; nullptr when out of range or not an array.
  [[nodiscard]] const JsonValue* at(std::size_t i) const;

  // Value accessors for parsed documents; numeric kinds convert freely,
  // anything else returns the fallback.
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const;
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::string as_string(std::string fallback = {}) const;

  /// Serialize. indent <= 0 emits the compact single-line form.
  void dump(std::ostream& out, int indent = 2) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

 private:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  void dump_impl(std::ostream& out, int indent, int depth) const;

  std::variant<std::monostate, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      v_;
};

}  // namespace mcm::obs
