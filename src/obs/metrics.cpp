#include "obs/metrics.hpp"

#include <stdexcept>

#include "common/csv.hpp"

namespace mcm::obs {

// get_or_create is the only map mutator; every public entry point takes
// mutex_ first. std::map nodes are stable, so references handed out remain
// valid while other threads keep registering.
MetricsRegistry::Metric& MetricsRegistry::get_or_create(const std::string& name,
                                                        MetricKind kind) {
  auto [it, inserted] = metrics_.try_emplace(name);
  if (!inserted && it->second.kind != kind) {
    throw std::logic_error("metric '" + name + "' already registered as " +
                           std::string(to_string(it->second.kind)));
  }
  it->second.kind = kind;
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  Metric& m = get_or_create(name, MetricKind::kCounter);
  if (!m.counter) m.counter = std::make_unique<Counter>();
  return *m.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  Metric& m = get_or_create(name, MetricKind::kGauge);
  if (!m.gauge) m.gauge = std::make_unique<Gauge>();
  return *m.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t buckets) {
  std::lock_guard lock(mutex_);
  Metric& m = get_or_create(name, MetricKind::kHistogram);
  if (!m.histogram) m.histogram = std::make_unique<Histogram>(lo, hi, buckets);
  return *m.histogram;
}

void MetricsRegistry::histogram(const std::string& name, const Histogram& h) {
  std::lock_guard lock(mutex_);
  Metric& m = get_or_create(name, MetricKind::kHistogram);
  m.histogram = std::make_unique<Histogram>(h);
}

bool MetricsRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return metrics_.find(name) != metrics_.end();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return metrics_.size();
}

std::vector<MetricEntry> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricEntry> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) {
    MetricEntry e;
    e.name = name;
    e.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter:
        e.value = static_cast<double>(m.counter->value());
        break;
      case MetricKind::kGauge:
        e.value = m.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Accumulator& a = m.histogram->summary();
        e.count = a.count();
        e.mean = a.mean();
        e.min = a.min();
        e.max = a.max();
        e.stddev = a.stddev();
        e.p50 = m.histogram->percentile(0.50);
        e.p95 = m.histogram->percentile(0.95);
        e.p99 = m.histogram->percentile(0.99);
        break;
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

JsonValue MetricsRegistry::to_json(bool with_buckets) const {
  std::lock_guard lock(mutex_);
  JsonValue root = JsonValue::object();
  for (const auto& [name, m] : metrics_) {
    JsonValue& entry = root[name];
    entry["kind"] = to_string(m.kind);
    switch (m.kind) {
      case MetricKind::kCounter:
        entry["value"] = m.counter->value();
        break;
      case MetricKind::kGauge:
        entry["value"] = m.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *m.histogram;
        const Accumulator& a = h.summary();
        entry["count"] = a.count();
        entry["mean"] = a.mean();
        entry["min"] = a.min();
        entry["max"] = a.max();
        entry["stddev"] = a.stddev();
        entry["p50"] = h.percentile(0.50);
        entry["p95"] = h.percentile(0.95);
        entry["p99"] = h.percentile(0.99);
        if (with_buckets) {
          entry["underflow"] = h.underflow();
          entry["overflow"] = h.overflow();
          JsonValue& edges = entry["bucket_lo"];
          JsonValue& counts = entry["bucket_count"];
          edges = JsonValue::array();
          counts = JsonValue::array();
          for (std::size_t i = 0; i < h.buckets().size(); ++i) {
            edges.push(h.bucket_lo(i));
            counts.push(h.buckets()[i]);
          }
        }
        break;
      }
    }
  }
  return root;
}

void MetricsRegistry::write_json(std::ostream& out, bool with_buckets) const {
  to_json(with_buckets).dump(out);
  out << '\n';
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.row({"name", "kind", "value", "count", "mean", "min", "max", "stddev",
           "p50", "p95", "p99"});
  for (const MetricEntry& e : snapshot()) {
    csv.field(e.name).field(to_string(e.kind));
    if (e.kind == MetricKind::kHistogram) {
      csv.field("");
      csv.field(e.count)
          .field(e.mean)
          .field(e.min)
          .field(e.max)
          .field(e.stddev)
          .field(e.p50)
          .field(e.p95)
          .field(e.p99);
    } else {
      csv.field(e.value);
      for (int i = 0; i < 8; ++i) csv.field("");
    }
    csv.endrow();
  }
}

}  // namespace mcm::obs
