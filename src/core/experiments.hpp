// Parameter sweeps reproducing the paper's evaluation:
//  - Fig. 3: frequency sweep (200-533 MHz) x channel counts, 720p30 frame.
//  - Figs. 4/5: format sweep (the five H.264 levels) x channel counts at a
//    fixed clock (400 MHz in the paper); Fig. 4 reads access time from the
//    points, Fig. 5 reads average power.
//
// The sweep functions are implemented by the exploration engine
// (src/explore): points run on the work-stealing thread pool (`threads` = 0
// means MCM_THREADS / hardware_concurrency) with per-point deterministic
// seeding, and the returned vector is identical regardless of thread count.
// Targets calling them must link mcm_explore.
#pragma once

#include <cstdint>
#include <vector>

#include "core/frame_simulator.hpp"

namespace mcm::core {

struct ExperimentConfig {
  multichannel::SystemConfig base;  // freq / channels overridden per point
  video::UseCaseParams usecase;     // level overridden per point
  FrameSimOptions sim;

  /// The paper's defaults: next-gen mobile DDR, RBC, open page, FR-FCFS,
  /// power-down after the first idle cycle, 16 B interleave.
  [[nodiscard]] static ExperimentConfig paper_defaults();
};

struct SweepPoint {
  double freq_mhz = 0;
  std::uint32_t channels = 0;
  video::H264Level level = video::H264Level::k31;
  FrameSimResult result;
};

/// DDR2-range clock frequencies the paper sweeps in Fig. 3.
[[nodiscard]] std::vector<double> paper_frequencies();

/// Channel counts evaluated throughout the paper.
[[nodiscard]] std::vector<std::uint32_t> paper_channel_counts();

/// Fig. 3: access time vs clock frequency for one encoded frame at `level`
/// (the paper uses level 3.1, 720p30).
[[nodiscard]] std::vector<SweepPoint> sweep_frequency(
    const ExperimentConfig& cfg, video::H264Level level = video::H264Level::k31,
    unsigned threads = 0);

/// Figs. 4 and 5: every H.264 level x channel count at a fixed frequency.
[[nodiscard]] std::vector<SweepPoint> sweep_formats(const ExperimentConfig& cfg,
                                                    double freq_mhz = 400.0,
                                                    unsigned threads = 0);

}  // namespace mcm::core
