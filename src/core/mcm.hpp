// Umbrella header for the mcmem library: multi-channel mobile DDR memory
// simulation for video recording workloads, reproducing Aho, Nikara,
// Tuominen and Kuusilinna, "A case for multi-channel memories in video
// recording", DATE 2009.
//
// Layering (bottom up):
//   common/sim      - units, stats, clocks, event queue
//   dram            - device spec, bank FSM, timing checker, energy model
//   controller      - address mapping, scheduling, refresh, power-down
//   channel         - MC + interconnect + bank cluster, Eq. (1) interface power
//   multichannel    - Table II interleaving, MemorySystem, channel clusters
//   video/load      - H.264 levels, Fig. 1 use case (Table I), traffic sources
//   cache/xdr       - cache filter premise, Cell BE XDR comparison point
//   core            - FrameSimulator and the figure sweeps
#pragma once

#include "cache/cache_model.hpp"
#include "channel/channel.hpp"
#include "channel/interface_power.hpp"
#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "controller/address_mapping.hpp"
#include "controller/memory_controller.hpp"
#include "controller/policies.hpp"
#include "controller/request.hpp"
#include "core/experiments.hpp"
#include "core/frame_simulator.hpp"
#include "core/source_runner.hpp"
#include "dram/bank.hpp"
#include "dram/bank_cluster.hpp"
#include "dram/command.hpp"
#include "dram/energy.hpp"
#include "dram/spec.hpp"
#include "dram/timing_checker.hpp"
#include "load/encoder_pattern_source.hpp"
#include "load/multi_stream_source.hpp"
#include "load/cached_source.hpp"
#include "load/playback_sources.hpp"
#include "load/trace.hpp"
#include "load/usecase_sources.hpp"
#include "multichannel/channel_clusters.hpp"
#include "pixel/encoder.hpp"
#include "pixel/image.hpp"
#include "pixel/stages.hpp"
#include "pixel/synthetic.hpp"
#include "pixel/transform.hpp"
#include "multichannel/interleaver.hpp"
#include "multichannel/memory_system.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "video/encoder_access.hpp"
#include "video/formats.hpp"
#include "video/h264_levels.hpp"
#include "video/playback.hpp"
#include "video/surfaces.hpp"
#include "video/usecase.hpp"
#include "xdr/xdr_model.hpp"
