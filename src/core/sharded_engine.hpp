// Channel-sharded execution of the paper's state-machine load model.
//
// The sequential feed loop (core::FrameSimulator) interleaves channels
// through one heap; this engine runs each channel as an independent logical
// process and keeps the results bit-identical via the *threshold protocol*:
//
//   for request r -> channel j, in stream order (position p):
//     1. j applies the max of thresholds published since its previous
//        position: pop while (horizon_j, j) <lex Tmax, then clear Tmax.
//     2. if j's queue is full: publish T = (horizon_j, j) to every other
//        channel (max-merged into their pending Tmax), then pop j once.
//     3. enqueue r into j.
//   stage end: every channel drains to empty (pending thresholds are
//   subsumed by the full drain).
//
// This is exactly what the sequential loop does: a full-queue stall there
// serves globally min-(horizon, channel) channels until j's key is the
// minimum again, i.e. it pops every channel k with (h_k, k) < (h_j, j) up
// to that bound — and between two of k's own enqueues only the *largest*
// such bound matters, so the bounds can be applied lazily at k's next
// position. Cross-channel pop order is output-invariant (stats are merged
// per channel, stage completion is a max), which is what makes the lazy
// application legal.
//
// Parallel execution, epoch-batched (default): the stream is cut into
// chunks of MCM_SIM_CHUNK positions and each chunk runs in three tiers:
//
//   Tier 1 (proven run): while every channel's occupancy plus its incoming
//   positions in the window fits its queue depth, no queue can fill, so no
//   thresholds can be published — workers blast their own channels'
//   positions (from load::ChunkMeta's per-channel position lists) with no
//   synchronization beyond the chunk barrier.
//
//   Tier 2 (speculate + validate): each worker runs its own channels'
//   positions assuming no cross-channel threshold binds inside the chunk
//   (entry thresholds from earlier chunks still apply at the first own
//   position), recording per position the pre-publish horizon, the
//   was-full bit, and the had-pending bit. After a barrier, each channel
//   replays the chunk's publish sequence from those records and checks
//   whether any threshold would have popped where speculation did not.
//   Publishes recorded before the globally first divergence are exact, so
//   the minimum over channels of the first divergence is exact.
//
//   Tier 3 (rollback): on divergence (or MCM_SIM_SPEC=rollback), restore
//   the epoch snapshot (whole-channel copies + trace rewind marks, taken
//   every few speculative chunks) and replay serially up to the chunk end
//   with the per-request protocol, then re-snapshot. Committed state is
//   never re-rolled. After kMaxRollbacksPerSegment genuine rollbacks the
//   segment's remainder is completed serially with the exact protocol
//   (speculation is clearly not paying for this stream shape).
//
// Per-request fallback (chunk size 1, 1 worker, MCM_SIM_SPEC=off, or a
// non-rewindable trace writer): requests are consumed in strict position
// order through one atomic cursor; the owner of position p's channel
// performs the tiny serialized step (apply + full-check + publish) and
// bumps the cursor; thresholds travel through per-channel SPSC rings.
// Channels are assigned to workers round-robin (channel c -> worker c % T).
//
// Every ordering and rollback decision is a pure function of per-channel
// deterministic state, so results are byte-identical at any worker count
// AND any chunk size, including the sequential loop's.
#pragma once

#include <cstdint>
#include <vector>

#include "load/stream_cache.hpp"
#include "multichannel/memory_system.hpp"

namespace mcm::core {

struct StageResult;  // frame_simulator.hpp

/// Bookkeeping the frame loop produces (mirrors the sequential path).
struct ShardedRunOutput {
  Time end_time = Time::zero();      // t after the last frame
  Time access_accum = Time::zero();  // sum of per-frame busy times
  std::vector<Time> per_frame_access;
  std::uint64_t bytes_first_frame = 0;
  std::vector<std::pair<std::string, std::uint64_t>> first_frame_stages;
  std::vector<Time> first_frame_completed;  // parallel to first_frame_stages
};

/// Run `frame_workloads.size()` frames (entry f = frame f's memoized
/// stream) against `sys` with `sim_threads` workers. The caller routes
/// nothing: requests carry global addresses and are routed here. Updates
/// sys's per-channel route counters; channel stats/energy/trace accumulate
/// in the channels as usual.
/// `sim_chunk` positions per speculative chunk (0 = MCM_SIM_CHUNK or the
/// built-in default; 1 forces the per-request protocol).
ShardedRunOutput run_sharded_frames(
    multichannel::MemorySystem& sys,
    const std::vector<const load::CachedWorkload*>& frame_workloads,
    Time period, unsigned sim_threads, unsigned sim_chunk = 0);

/// The sequential feed loop (one heap, `while (!try_submit) process_next`)
/// over the same memoized streams: the legacy-equivalent semantics the
/// threshold protocol above reproduces. Kept as a first-class entry point so
/// the differential verifier can pit the two feeds against each other and
/// against the golden reference model.
ShardedRunOutput run_sequential_frames(
    multichannel::MemorySystem& sys,
    const std::vector<const load::CachedWorkload*>& frame_workloads,
    Time period);

/// MCM_SIM_THREADS when set to a positive integer, else 1. Intra-point
/// parallelism is opt-in: exploration already parallelizes across points.
[[nodiscard]] unsigned sim_threads_from_env();

/// Worker count actually used for `requested` threads on `channels`
/// channels (0 = environment default; clamped to the channel count).
[[nodiscard]] unsigned resolve_sim_threads(unsigned requested,
                                           std::uint32_t channels);

/// MCM_SIM_CHUNK when set to a positive integer, else 0 (engine default).
[[nodiscard]] unsigned sim_chunk_from_env();

/// Chunk size actually used for `requested` (0 = environment default, then
/// the built-in default of 4096 positions).
[[nodiscard]] unsigned resolve_sim_chunk(unsigned requested);

}  // namespace mcm::core
