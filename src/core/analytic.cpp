#include "core/analytic.hpp"

#include <algorithm>
#include <cmath>

namespace mcm::core {

AnalyticResult analytic_estimate(const multichannel::SystemConfig& system,
                                 const video::UseCaseParams& usecase,
                                 const load::LoadOptions& load) {
  const video::UseCaseModel model(usecase);
  // Homogeneous-device model: the closed form prices every channel with the
  // base device's timing/energy tables. Heterogeneous channel_classes are
  // deliberately ignored here (a per-class closed form would need the full
  // placement), so callers must not use this estimate to prune
  // heterogeneous configurations; the explore orchestrator simulates them
  // unconditionally.
  const auto d = dram::DerivedTiming::derive(system.device.timing, system.freq);
  const auto& org = system.device.org;
  const double channels = system.channels;
  const double burst_bytes = org.bytes_per_burst();

  AnalyticBreakdownCycles cyc;
  double reads = 0, writes = 0, row_misses = 0;

  for (const auto& stage : model.stages()) {
    const double rd_bytes = stage.read_bits / 8.0 / channels;   // per channel
    const double wr_bytes = stage.write_bits / 8.0 / channels;
    const double rd_bursts = rd_bytes / burst_bytes;
    const double wr_bursts = wr_bytes / burst_bytes;
    reads += rd_bursts;
    writes += wr_bursts;
    cyc.data += (rd_bursts + wr_bursts) * d.burst_ck;

    // Direction turnarounds. The source interleaves directions at
    // chunk_bytes; across M channels each channel sees runs of
    // chunk/(burst*M) same-direction bursts, and the FR-FCFS queue batches
    // up to its same-direction share. One WR->RD + RD->WR pair costs about
    // tWTR + CL + 1 bus-idle cycles.
    if (rd_bursts > 0 && wr_bursts > 0) {
      const double total = rd_bursts + wr_bursts;
      const double minority = std::min(rd_bursts, wr_bursts);
      const double chunk_run = std::max(
          1.0, static_cast<double>(load.chunk_bytes) / (burst_bytes * channels));
      const double queue_run =
          std::max(1.0, system.controller.queue_depth * (minority / total));
      const double batch = std::max(chunk_run, queue_run);
      const double pairs = minority / batch;
      cyc.turnaround += pairs * (d.twtr + d.cl + 1);
    }

    // Row misses: sequential streams miss once per row of channel-local
    // data. With RBC the next row is in the next bank, so ACT/PRE overlap
    // the previous row's data almost entirely; a small bubble remains when
    // the queue cannot look far enough ahead.
    const double stream_bytes = rd_bytes + wr_bytes;
    const double misses = stream_bytes / org.row_bytes;
    row_misses += misses;
    const double lookahead =
        0.5 * system.controller.queue_depth * d.burst_ck;  // cycles of cover
    const double bubble =
        std::max(0.0, static_cast<double>(d.trp + d.trcd) - lookahead);
    cyc.row += misses * (bubble + 1.0);  // +1: extra command-bus slot
  }

  // Refresh steals tRFC every tREFI while busy.
  const double base = cyc.data + cyc.turnaround + cyc.row;
  cyc.refresh = base * static_cast<double>(d.trfc) / static_cast<double>(d.trefi);

  AnalyticResult out;
  out.cycles = cyc;
  out.frame_period = model.frame_period();
  const double busy_s = cyc.total() * d.clk.seconds();
  out.access_time = Time::from_seconds(busy_s);
  out.efficiency = cyc.data / cyc.total();
  out.meets_realtime = out.access_time <= out.frame_period;

  // Power over the frame period: event energies + busy active standby +
  // idle-tail power-down + refresh duty, plus Eq. (1) interface power.
  const dram::EnergyModel energy(system.device.power, d);
  const double period_ns = out.frame_period.ns();
  const double busy_ns = std::min(busy_s * 1e9, period_ns);
  const double tail_ns = std::max(0.0, period_ns - busy_ns);

  double pj = 0;
  pj += reads * energy.e_read_pj() + writes * energy.e_write_pj();
  pj += row_misses * energy.e_act_pre_pj();
  pj += (period_ns / (static_cast<double>(d.trefi) * d.clk.ns())) *
        energy.e_refresh_pj();
  pj += busy_ns * energy.p_active_standby_mw();
  pj += tail_ns * energy.p_powerdown_mw();
  const double per_channel_mw = pj / period_ns;

  out.dram_power_mw = per_channel_mw * channels;
  channel::InterfacePowerSpec interface = system.interface;
  out.interface_power_mw = interface.power_mw(system.freq) * channels;
  out.total_power_mw = out.dram_power_mw + out.interface_power_mw;
  return out;
}

}  // namespace mcm::core
