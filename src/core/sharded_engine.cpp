#include "core/sharded_engine.hpp"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>

#include "exec/thread_pool.hpp"
#include "obs/prof.hpp"

namespace mcm::core {
namespace {

// Threshold ring capacity. Thresholds addressed to a channel are folded
// into a running max by the owning worker every time it polls the cursor,
// so the ring only holds the few entries published while the owner is busy
// serving its own channels; 256 is orders of magnitude above that.
constexpr std::uint32_t kRingCap = 256;

/// Strict (horizon, channel) order — the sequential engine's channel-select
/// key. `a` pops while its key is lexicographically below the threshold.
bool key_less(std::int64_t ha, std::uint32_t ia, std::int64_t hb,
              std::uint32_t ib) {
  return ha < hb || (ha == hb && ia < ib);
}

struct alignas(64) ChanState {
  struct Entry {
    std::int64_t h_ps = 0;
    std::uint32_t idx = 0;
  };
  // SPSC by construction: producers are serialized by cursor ownership
  // (publishing happens strictly before the cursor bump, so the next
  // producer's cursor acquire sees all prior ring writes); the single
  // consumer is the worker that owns this channel.
  Entry ring[kRingCap];
  std::atomic<std::uint64_t> published{0};
  std::atomic<std::uint64_t> consumed{0};

  // Consumer-local state (also reset by the barrier's serial step, which
  // is synchronized against every worker).
  std::int64_t tmax_ps = 0;
  std::uint32_t tmax_idx = 0;
  bool tmax_valid = false;
  std::uint64_t routed = 0;
};

// Per-worker self-profiling handles (obs/prof). Everything here observes
// host-side wall clock only and never feeds back into engine decisions, so
// simulated results are identical with profiling on or off. Interning the
// per-worker phase names costs a handful of map lookups per run, paid only
// when profiling is enabled.
struct WorkerProf {
  bool on = false;
  obs::prof::PhaseId feed{};        // main-loop wall per segment (incl. waits)
  obs::prof::PhaseId drain{};       // stage-barrier drain wall per segment
  obs::prof::PhaseId handoff{};     // cursor-handoff wait episodes
  obs::prof::PhaseId ring_full{};   // SPSC threshold-ring full stalls
  obs::prof::PhaseId barrier{};     // segment-barrier wait
  obs::prof::PhaseId retired{};     // completions popped by this worker
  obs::prof::PhaseId folded{};      // thresholds folded from rings
  obs::prof::PhaseId occupancy{};   // ring occupancy sampled at publish
};

WorkerProf make_worker_prof(unsigned w) {
  WorkerProf p;
  p.on = obs::prof::enabled();
  if (!p.on) return p;
  char buf[48];
  const auto id = [&](const char* suffix) {
    std::snprintf(buf, sizeof buf, "engine/w%u/%s", w, suffix);
    return obs::prof::phase_id(buf);
  };
  p.feed = id("feed");
  p.drain = id("drain");
  p.handoff = id("handoff_wait");
  p.ring_full = id("ring_full_wait");
  p.barrier = id("barrier_wait");
  p.retired = id("retired");
  p.folded = id("thresholds_folded");
  p.occupancy = id("ring_occupancy");
  std::snprintf(buf, sizeof buf, "engine/w%u", w);
  obs::prof::set_thread_label(buf);
  return p;
}

struct Segment {
  const load::CachedStage* stage = nullptr;
  std::uint32_t burst = 0;
  int frame = 0;
  bool first_of_frame = false;
  bool last_of_frame = false;
};

struct Shared {
  multichannel::MemorySystem& sys;
  const multichannel::Interleaver& il;
  std::vector<Segment> segments;
  Time period = Time::zero();
  unsigned workers = 1;

  std::atomic<std::uint64_t> cursor{0};
  std::atomic<unsigned> arrived{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<bool> failed{false};
  bool oversubscribed = false;

  // Written by the serial barrier step, read by workers after the next
  // generation acquire.
  Time arrival = Time::zero();

  std::vector<ChanState> chans;
  std::vector<Time> slot_last_done;  // per worker

  // Serial-step frame bookkeeping (mirrors the sequential loop).
  Time t = Time::zero();
  Time frame_start = Time::zero();
  Time stage_start = Time::zero();
  ShardedRunOutput out;

  explicit Shared(multichannel::MemorySystem& s)
      : sys(s), il(s.interleaver()) {}
};

/// Wait briefly for another worker. With more workers than hardware
/// threads, the awaited worker cannot be running — hand the core over
/// immediately instead of burning a scheduling quantum.
void spin_pause(unsigned& spins, bool oversubscribed) {
  if (oversubscribed) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
  if ((++spins & 63u) == 0) std::this_thread::yield();
}

/// Max-merge one threshold into the channel's pending bound (only the
/// channel's owning worker may call this - tmax is consumer-private).
void fold_threshold(ChanState& st, std::int64_t h_ps, std::uint32_t idx) {
  if (!st.tmax_valid || key_less(st.tmax_ps, st.tmax_idx, h_ps, idx)) {
    st.tmax_ps = h_ps;
    st.tmax_idx = idx;
    st.tmax_valid = true;
  }
}

/// Fold every published-but-unconsumed threshold into the channel's max.
/// Returns the number of thresholds folded (0 on the common empty path).
std::uint64_t drain_ring(ChanState& st) {
  const std::uint64_t pub = st.published.load(std::memory_order_acquire);
  std::uint64_t con = st.consumed.load(std::memory_order_relaxed);
  if (con == pub) return 0;
  const std::uint64_t folded = pub - con;
  do {
    const ChanState::Entry& e = st.ring[con % kRingCap];
    fold_threshold(st, e.h_ps, e.idx);
  } while (++con < pub);
  st.consumed.store(con, std::memory_order_release);
  return folded;
}

/// When `stall_ns` is non-null (profiling), full-ring producer stalls are
/// accumulated there; `*stalls` counts the episodes.
void publish(Shared& sh, ChanState& dst, std::int64_t h_ps, std::uint32_t idx,
             std::int64_t* stall_ns, std::uint64_t* stalls) {
  const std::uint64_t pub = dst.published.load(std::memory_order_relaxed);
  if (pub - dst.consumed.load(std::memory_order_acquire) >= kRingCap) {
    const std::int64_t t0 = stall_ns != nullptr ? obs::prof::now_ns() : 0;
    unsigned spins = 0;
    do {
      if (sh.failed.load(std::memory_order_relaxed)) return;
      spin_pause(spins, sh.oversubscribed);  // the consumer drains on every cursor poll
    } while (pub - dst.consumed.load(std::memory_order_acquire) >= kRingCap);
    if (stall_ns != nullptr) {
      *stall_ns += obs::prof::now_ns() - t0;
      ++*stalls;
    }
  }
  dst.ring[pub % kRingCap] = ChanState::Entry{h_ps, idx};
  dst.published.store(pub + 1, std::memory_order_release);
}

/// The serial step the last barrier arriver runs after segment `i`: merge
/// per-worker completion maxima, advance the frame clock exactly like the
/// sequential loop, and stage the next segment.
void serial_step(Shared& sh, std::size_t i) {
  const Segment& s = sh.segments[i];
  Time last = sh.arrival;
  for (unsigned w = 0; w < sh.workers; ++w) {
    last = max(last, sh.slot_last_done[w]);
  }
  sh.stage_start = max(sh.stage_start, last);
  if (s.frame == 0) {
    const std::uint64_t bytes = s.stage->reqs.size() * s.burst;
    sh.out.first_frame_stages.emplace_back(s.stage->name, bytes);
    sh.out.first_frame_completed.push_back(sh.stage_start);
    sh.out.bytes_first_frame += bytes;
  }
  if (s.last_of_frame) {
    const Time busy = sh.stage_start - sh.frame_start;
    sh.out.access_accum += busy;
    sh.out.per_frame_access.push_back(busy);
    sh.t = max(sh.frame_start + sh.period, sh.stage_start);
  }
  if (i + 1 < sh.segments.size()) {
    if (sh.segments[i + 1].first_of_frame) {
      sh.frame_start = sh.t;
      sh.stage_start = sh.t;
    }
    sh.arrival = sh.stage_start;
    sh.cursor.store(0, std::memory_order_relaxed);
    for (ChanState& st : sh.chans) {
      st.published.store(0, std::memory_order_relaxed);
      st.consumed.store(0, std::memory_order_relaxed);
      st.tmax_valid = false;
    }
  } else {
    sh.out.end_time = sh.t;
  }
}

/// Sense-reversing barrier; the last arriver runs the serial step for
/// segment `i`. Returns false when the run was aborted by a failure.
bool barrier(Shared& sh, std::size_t i, const WorkerProf& wp) {
  const std::uint64_t gen = sh.generation.load(std::memory_order_acquire);
  if (sh.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == sh.workers) {
    static const obs::prof::PhaseId kSerialStep =
        obs::prof::phase_id("engine/serial_step");
    const std::int64_t t0 = wp.on ? obs::prof::now_ns() : 0;
    serial_step(sh, i);
    if (wp.on) obs::prof::tally(kSerialStep, obs::prof::now_ns() - t0);
    sh.arrived.store(0, std::memory_order_relaxed);
    sh.generation.store(gen + 1, std::memory_order_release);
    return !sh.failed.load(std::memory_order_relaxed);
  }
  const std::int64_t t0 = wp.on ? obs::prof::now_ns() : 0;
  unsigned spins = 0;
  while (sh.generation.load(std::memory_order_acquire) == gen) {
    if (sh.failed.load(std::memory_order_relaxed)) {
      if (wp.on) obs::prof::tally(wp.barrier, obs::prof::now_ns() - t0);
      return false;
    }
    spin_pause(spins, sh.oversubscribed);
  }
  if (wp.on) obs::prof::tally(wp.barrier, obs::prof::now_ns() - t0);
  return !sh.failed.load(std::memory_order_relaxed);
}

void run_segment(Shared& sh, const Segment& s, unsigned w,
                 const WorkerProf& wp) {
  const std::uint64_t n = s.stage->reqs.size();
  const std::uint64_t* reqs = s.stage->reqs.data();
  const std::uint32_t channels = sh.sys.channel_count();
  const unsigned T = sh.workers;
  const Time arr = sh.arrival;
  const std::uint16_t sid = s.stage->source_id;
  Time local_done = arr;

  // Profiling accumulators, flushed once per segment. Timing the handoff
  // wait costs two clock reads per *episode* (an unbroken run of non-owned
  // positions), never per request; with one worker no episode ever starts.
  const bool pon = wp.on;
  const std::int64_t t_feed0 = pon ? obs::prof::now_ns() : 0;
  std::int64_t handoff_wait_t0 = 0;
  bool handoff_waiting = false;
  std::int64_t ring_stall_ns = 0;
  std::uint64_t ring_stalls = 0;
  std::uint64_t retired = 0;
  std::uint64_t folded = 0;

  const auto pop = [&](channel::Channel& ch) {
    const auto c = ch.process_one();
    local_done = max(local_done, c.done);
    retired += static_cast<std::uint64_t>(pon);
  };

  unsigned spins = 0;
  while (!sh.failed.load(std::memory_order_relaxed)) {
    const std::uint64_t p = sh.cursor.load(std::memory_order_acquire);
    if (p >= n) break;
    const std::uint64_t packed = reqs[p];
    const auto routed = sh.il.route(load::CachedStage::addr_of(packed));
    const std::uint32_t c = routed.channel;
    if (c % T != w) {
      // Not ours: keep our channels' thresholds folded and wait.
      if (pon && !handoff_waiting) {
        handoff_waiting = true;
        handoff_wait_t0 = obs::prof::now_ns();
      }
      for (std::uint32_t k = w; k < channels; k += T) {
        folded += drain_ring(sh.chans[k]);
      }
      spin_pause(spins, sh.oversubscribed);
      continue;
    }
    if (handoff_waiting) {
      obs::prof::tally(wp.handoff, obs::prof::now_ns() - handoff_wait_t0);
      handoff_waiting = false;
    }
    channel::Channel& ch = sh.sys.channel(c);
    ChanState& st = sh.chans[c];
    folded += drain_ring(st);
    if (st.tmax_valid) {
      while (ch.has_pending() &&
             key_less(ch.horizon().ps(), c, st.tmax_ps, st.tmax_idx)) {
        pop(ch);
      }
      st.tmax_valid = false;
    }
    const bool was_full = !ch.can_accept();
    if (was_full) {
      // Threshold = pre-pop horizon: the sequential stall serves other
      // channels up to (h_j, j) *before* serving j itself.
      const std::int64_t hj = ch.horizon().ps();
      for (std::uint32_t k = 0; k < channels; ++k) {
        if (k == c) continue;
        if (k % T == w) {
          // Our own channel: we are its only consumer, and we would never
          // poll its ring while we hold the cursor - fold directly (after
          // the ring, to keep thresholds max-merged with any cross-worker
          // ones already queued).
          folded += drain_ring(sh.chans[k]);
          fold_threshold(sh.chans[k], hj, c);
        } else {
          if (pon) {
            const ChanState& dst = sh.chans[k];
            obs::prof::value(
                wp.occupancy,
                static_cast<std::int64_t>(
                    dst.published.load(std::memory_order_relaxed) -
                    dst.consumed.load(std::memory_order_relaxed)));
          }
          publish(sh, sh.chans[k], hj, c, pon ? &ring_stall_ns : nullptr,
                  &ring_stalls);
        }
      }
    }
    // Release the position: everything below only touches channel c.
    sh.cursor.store(p + 1, std::memory_order_release);
    if (was_full) pop(ch);
    ctrl::Request r;
    r.addr = routed.local;
    r.is_write = load::CachedStage::is_write_of(packed);
    r.arrival = arr;
    r.source = sid;
    ch.enqueue(r);
    ++st.routed;
  }
  if (handoff_waiting) {
    obs::prof::tally(wp.handoff, obs::prof::now_ns() - handoff_wait_t0);
  }

  const std::int64_t t_drain0 = pon ? obs::prof::now_ns() : 0;
  // Stage barrier: drain owned channels to empty. All enqueues into our
  // channels happened on this worker, and trailing thresholds are subsumed
  // by the full drain.
  for (std::uint32_t c = w; c < channels; c += T) {
    sh.chans[c].tmax_valid = false;
    channel::Channel& ch = sh.sys.channel(c);
    while (ch.has_pending()) pop(ch);
  }
  sh.slot_last_done[w] = local_done;

  if (pon) {
    const std::int64_t t_end = obs::prof::now_ns();
    obs::prof::tally(wp.feed, t_drain0 - t_feed0);
    obs::prof::tally(wp.drain, t_end - t_drain0);
    if (ring_stalls > 0) obs::prof::tally(wp.ring_full, ring_stall_ns, ring_stalls);
    if (retired > 0) obs::prof::count(wp.retired, retired);
    if (folded > 0) obs::prof::count(wp.folded, folded);
  }
}

void run_worker(Shared& sh, unsigned w) {
  const WorkerProf wp = make_worker_prof(w);
  try {
    for (std::size_t i = 0; i < sh.segments.size(); ++i) {
      run_segment(sh, sh.segments[i], w, wp);
      if (!barrier(sh, i, wp)) return;
    }
  } catch (...) {
    sh.failed.store(true, std::memory_order_relaxed);
    throw;
  }
}

}  // namespace

unsigned sim_threads_from_env() {
  const char* env = std::getenv("MCM_SIM_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 1;
  return static_cast<unsigned>(v);
}

unsigned resolve_sim_threads(unsigned requested, std::uint32_t channels) {
  const unsigned want = requested > 0 ? requested : sim_threads_from_env();
  return std::max(1u, std::min(want, channels));
}

ShardedRunOutput run_sharded_frames(
    multichannel::MemorySystem& sys,
    const std::vector<const load::CachedWorkload*>& frame_workloads,
    Time period, unsigned sim_threads) {
  Shared sh(sys);
  sh.period = period;
  sh.workers = resolve_sim_threads(sim_threads, sys.channel_count());
  const unsigned hw = std::thread::hardware_concurrency();
  sh.oversubscribed = hw > 0 && sh.workers > hw;
  for (std::size_t f = 0; f < frame_workloads.size(); ++f) {
    const load::CachedWorkload* wl = frame_workloads[f];
    assert(!wl->stages.empty());
    for (std::size_t si = 0; si < wl->stages.size(); ++si) {
      Segment s;
      s.stage = &wl->stages[si];
      s.burst = wl->burst_bytes;
      s.frame = static_cast<int>(f);
      s.first_of_frame = si == 0;
      s.last_of_frame = si + 1 == wl->stages.size();
      sh.segments.push_back(s);
    }
  }
  sh.chans = std::vector<ChanState>(sys.channel_count());
  sh.slot_last_done.assign(sh.workers, Time::zero());

  if (sh.workers == 1) {
    run_worker(sh, 0);
  } else {
    exec::ThreadPool pool(sh.workers - 1);
    for (unsigned w = 1; w < sh.workers; ++w) {
      pool.submit([&sh, w] { run_worker(sh, w); });
    }
    try {
      run_worker(sh, 0);
    } catch (...) {
      // Workers observe `failed` and unwind; surface the first error.
      try {
        pool.wait_idle();
      } catch (...) {
      }
      throw;
    }
    pool.wait_idle();
  }

  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    sys.add_route_count(c, sh.chans[c].routed);
  }
  return sh.out;
}

ShardedRunOutput run_sequential_frames(
    multichannel::MemorySystem& sys,
    const std::vector<const load::CachedWorkload*>& frame_workloads,
    Time period) {
  ShardedRunOutput out;
  Time t = Time::zero();
  for (std::size_t f = 0; f < frame_workloads.size(); ++f) {
    const load::CachedWorkload* wl = frame_workloads[f];
    assert(!wl->stages.empty());
    const Time frame_start = t;
    Time stage_start = frame_start;
    for (const load::CachedStage& stage : wl->stages) {
      Time last_done = stage_start;
      for (const std::uint64_t packed : stage.reqs) {
        ctrl::Request r;
        r.addr = load::CachedStage::addr_of(packed);  // global; submit routes
        r.is_write = load::CachedStage::is_write_of(packed);
        r.arrival = stage_start;
        r.source = stage.source_id;
        while (!sys.try_submit(r)) {
          const auto c = sys.process_next();
          assert(c.has_value());  // a full queue implies pending work
          last_done = max(last_done, c->done);
        }
      }
      // Stage barrier: the next stage consumes this stage's output frame.
      while (const auto c = sys.process_next()) last_done = max(last_done, c->done);
      stage_start = max(stage_start, last_done);
      if (f == 0) {
        const std::uint64_t bytes = stage.reqs.size() * wl->burst_bytes;
        out.first_frame_stages.emplace_back(stage.name, bytes);
        out.first_frame_completed.push_back(stage_start);
        out.bytes_first_frame += bytes;
      }
    }
    const Time busy = stage_start - frame_start;
    out.access_accum += busy;
    out.per_frame_access.push_back(busy);
    t = max(frame_start + period, stage_start);
  }
  out.end_time = t;
  return out;
}

}  // namespace mcm::core
