#include "core/sharded_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exec/thread_pool.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace mcm::core {
namespace {

// Threshold ring capacity. Thresholds addressed to a channel are folded
// into a running max by the owning worker every time it polls the cursor,
// so the ring only holds the few entries published while the owner is busy
// serving its own channels; 256 is orders of magnitude above that.
constexpr std::uint32_t kRingCap = 256;

// Positions per speculative chunk when neither the caller nor MCM_SIM_CHUNK
// chooses: big enough that the 2-3 chunk barriers amortize to noise against
// ~4096 requests of service work, small enough that a rollback replays a
// bounded slice.
constexpr unsigned kDefaultSimChunk = 4096;

// Speculative chunks between epoch snapshots. Snapshots copy whole channels
// (dominated by the ~32 KB latency histogram each), so they are amortized
// over several chunks; a rollback replays at most this many chunks.
constexpr unsigned kEpochChunks = 8;

// Genuine rollbacks tolerated per segment before the rest of the segment
// falls back to the per-request protocol (adaptive kill switch; a pure
// function of deterministic state, so it cannot break determinism).
constexpr unsigned kMaxRollbacksPerSegment = 8;

constexpr std::uint64_t kNoDivergence =
    std::numeric_limits<std::uint64_t>::max();

// MCM_SIM_SPEC: "off"/"0" disables chunked speculation (per-request
// protocol), "rollback" forces a rollback at every speculative chunk (test
// knob: results must stay byte-identical), anything else = on.
enum class SpecMode { kOn, kOff, kForceRollback };

SpecMode spec_mode_from_env() {
  const char* env = std::getenv("MCM_SIM_SPEC");
  if (env == nullptr || *env == '\0') return SpecMode::kOn;
  const std::string v(env);
  if (v == "off" || v == "OFF" || v == "0") return SpecMode::kOff;
  if (v == "rollback") return SpecMode::kForceRollback;
  return SpecMode::kOn;
}

/// Strict (horizon, channel) order — the sequential engine's channel-select
/// key. `a` pops while its key is lexicographically below the threshold.
bool key_less(std::int64_t ha, std::uint32_t ia, std::int64_t hb,
              std::uint32_t ib) {
  return ha < hb || (ha == hb && ia < ib);
}

struct alignas(64) ChanState {
  struct Entry {
    std::int64_t h_ps = 0;
    std::uint32_t idx = 0;
  };
  // SPSC by construction: producers are serialized by cursor ownership
  // (publishing happens strictly before the cursor bump, so the next
  // producer's cursor acquire sees all prior ring writes); the single
  // consumer is the worker that owns this channel.
  Entry ring[kRingCap];
  std::atomic<std::uint64_t> published{0};
  std::atomic<std::uint64_t> consumed{0};

  // Consumer-local state (also reset by the barrier's serial step, which
  // is synchronized against every worker).
  std::int64_t tmax_ps = 0;
  std::uint32_t tmax_idx = 0;
  bool tmax_valid = false;
  std::uint64_t routed = 0;

  // Chunked mode only (owner-local, barrier-synchronized): next unconsumed
  // index into ChunkMeta::pos_of for this channel, and the exit threshold
  // the validation walk computed for the current chunk (promoted to tmax
  // on commit, discarded on rollback).
  std::uint32_t meta_idx = 0;
  std::int64_t exit_ps = 0;
  std::uint32_t exit_idx = 0;
  bool exit_valid = false;
};

// Per-worker self-profiling handles (obs/prof). Everything here observes
// host-side wall clock only and never feeds back into engine decisions, so
// simulated results are identical with profiling on or off. Interning the
// per-worker phase names costs a handful of map lookups per run, paid only
// when profiling is enabled.
struct WorkerProf {
  bool on = false;
  obs::prof::PhaseId feed{};        // main-loop wall per segment (incl. waits)
  obs::prof::PhaseId drain{};       // stage-barrier drain wall per segment
  obs::prof::PhaseId handoff{};     // cursor-handoff wait episodes
  obs::prof::PhaseId ring_full{};   // SPSC threshold-ring full stalls
  obs::prof::PhaseId barrier{};     // segment-barrier wait
  obs::prof::PhaseId retired{};     // completions popped by this worker
  obs::prof::PhaseId folded{};      // thresholds folded from rings
  obs::prof::PhaseId occupancy{};   // ring occupancy sampled at publish
  obs::prof::PhaseId speculate{};   // chunked: speculative execution wall
  obs::prof::PhaseId validate{};    // chunked: validation walk wall
  obs::prof::PhaseId snapshot{};    // chunked: epoch snapshot wall
  obs::prof::PhaseId publishes{};   // chunked: full-queue publish records
  obs::prof::PhaseId spec_depth{};  // chunked: own positions per spec chunk
};

WorkerProf make_worker_prof(unsigned w) {
  WorkerProf p;
  p.on = obs::prof::enabled();
  if (!p.on) return p;
  char buf[48];
  const auto id = [&](const char* suffix) {
    std::snprintf(buf, sizeof buf, "engine/w%u/%s", w, suffix);
    return obs::prof::phase_id(buf);
  };
  p.feed = id("feed");
  p.drain = id("drain");
  p.handoff = id("handoff_wait");
  p.ring_full = id("ring_full_wait");
  p.barrier = id("barrier_wait");
  p.retired = id("retired");
  p.folded = id("thresholds_folded");
  p.occupancy = id("ring_occupancy");
  p.speculate = id("speculate");
  p.validate = id("validate");
  p.snapshot = id("snapshot");
  p.publishes = id("publishes");
  p.spec_depth = id("spec_depth");
  std::snprintf(buf, sizeof buf, "engine/w%u", w);
  obs::prof::set_thread_label(buf);
  return p;
}

struct Segment {
  const load::CachedStage* stage = nullptr;
  std::uint32_t burst = 0;
  int frame = 0;
  bool first_of_frame = false;
  bool last_of_frame = false;
};

struct Shared {
  multichannel::MemorySystem& sys;
  const multichannel::Interleaver& il;
  std::vector<Segment> segments;
  Time period = Time::zero();
  unsigned workers = 1;

  std::atomic<std::uint64_t> cursor{0};
  std::atomic<unsigned> arrived{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<bool> failed{false};
  bool oversubscribed = false;

  // Written by the serial barrier step, read by workers after the next
  // generation acquire.
  Time arrival = Time::zero();

  std::vector<ChanState> chans;
  std::vector<Time> slot_last_done;  // per worker

  // Serial-step frame bookkeeping (mirrors the sequential loop).
  Time t = Time::zero();
  Time frame_start = Time::zero();
  Time stage_start = Time::zero();
  ShardedRunOutput out;

  // ---- Chunked (epoch-batched) mode ----
  bool chunked = false;
  unsigned chunk = 0;  // max positions per speculative chunk
  SpecMode spec_mode = SpecMode::kOn;
  std::vector<std::shared_ptr<const load::ChunkMeta>> metas;  // per segment
  std::size_t seg_index = 0;  // segment the chunk serial steps operate on

  // Chunk window: written by serial steps, read by workers after the next
  // generation acquire.
  std::uint64_t chunk_begin = 0;
  std::uint64_t chunk_end = 0;
  bool chunk_proven = false;
  bool take_snapshot = false;
  bool rolled_back = false;
  bool spec_killed = false;

  // Speculation record for the current chunk, indexed p - chunk_begin.
  // Each position is written by exactly one worker (the channel owner)
  // during SPEC and read only after the chunk barrier.
  std::vector<std::int64_t> h_pre;  // horizon before the full-queue pop
  std::vector<std::uint8_t> flags;  // bit0 was_full, bit1 had_pending

  // Per-worker first divergence (kNoDivergence = clean), min-reduced at
  // the commit barrier.
  std::vector<std::uint64_t> div_min;

  // Epoch snapshot: whole-channel copies + trace rewind marks + engine
  // bookkeeping, restored on rollback. Snapshots of a worker's own
  // channels are taken in parallel at the chunk start; the post-replay
  // re-snapshot is serial.
  std::uint64_t epoch_begin = 0;
  bool has_snapshot = false;
  unsigned spec_chunks_since_snapshot = 0;
  unsigned segment_rollbacks = 0;
  struct ChanSave {
    std::int64_t tmax_ps = 0;
    std::uint32_t tmax_idx = 0;
    bool tmax_valid = false;
    std::uint64_t routed = 0;
    std::uint32_t meta_idx = 0;
  };
  std::vector<std::optional<channel::Channel>> chan_snaps;
  std::vector<std::uint64_t> spool_marks;
  std::vector<ChanSave> chan_saves;
  std::vector<Time> done_snap;  // per worker

  explicit Shared(multichannel::MemorySystem& s)
      : sys(s), il(s.interleaver()) {}
};

/// Wait briefly for another worker. With more workers than hardware
/// threads, the awaited worker cannot be running — hand the core over
/// immediately instead of burning a scheduling quantum.
void spin_pause(unsigned& spins, bool oversubscribed) {
  if (oversubscribed) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
  if ((++spins & 63u) == 0) std::this_thread::yield();
}

void stage_next_chunk(Shared& sh, std::uint64_t begin, std::uint64_t n);

/// Max-merge one threshold into the channel's pending bound (only the
/// channel's owning worker may call this - tmax is consumer-private).
void fold_threshold(ChanState& st, std::int64_t h_ps, std::uint32_t idx) {
  if (!st.tmax_valid || key_less(st.tmax_ps, st.tmax_idx, h_ps, idx)) {
    st.tmax_ps = h_ps;
    st.tmax_idx = idx;
    st.tmax_valid = true;
  }
}

/// Fold every published-but-unconsumed threshold into the channel's max.
/// Returns the number of thresholds folded (0 on the common empty path).
std::uint64_t drain_ring(ChanState& st) {
  const std::uint64_t pub = st.published.load(std::memory_order_acquire);
  std::uint64_t con = st.consumed.load(std::memory_order_relaxed);
  if (con == pub) return 0;
  const std::uint64_t folded = pub - con;
  do {
    const ChanState::Entry& e = st.ring[con % kRingCap];
    fold_threshold(st, e.h_ps, e.idx);
  } while (++con < pub);
  st.consumed.store(con, std::memory_order_release);
  return folded;
}

/// When `stall_ns` is non-null (profiling), full-ring producer stalls are
/// accumulated there; `*stalls` counts the episodes.
void publish(Shared& sh, ChanState& dst, std::int64_t h_ps, std::uint32_t idx,
             std::int64_t* stall_ns, std::uint64_t* stalls) {
  const std::uint64_t pub = dst.published.load(std::memory_order_relaxed);
  if (pub - dst.consumed.load(std::memory_order_acquire) >= kRingCap) {
    const std::int64_t t0 = stall_ns != nullptr ? obs::prof::now_ns() : 0;
    unsigned spins = 0;
    do {
      if (sh.failed.load(std::memory_order_relaxed)) return;
      spin_pause(spins, sh.oversubscribed);  // the consumer drains on every cursor poll
    } while (pub - dst.consumed.load(std::memory_order_acquire) >= kRingCap);
    if (stall_ns != nullptr) {
      *stall_ns += obs::prof::now_ns() - t0;
      ++*stalls;
    }
  }
  dst.ring[pub % kRingCap] = ChanState::Entry{h_ps, idx};
  dst.published.store(pub + 1, std::memory_order_release);
}

/// The serial step the last barrier arriver runs after segment `i`: merge
/// per-worker completion maxima, advance the frame clock exactly like the
/// sequential loop, and stage the next segment.
void serial_step(Shared& sh, std::size_t i) {
  const Segment& s = sh.segments[i];
  Time last = sh.arrival;
  for (unsigned w = 0; w < sh.workers; ++w) {
    last = max(last, sh.slot_last_done[w]);
  }
  sh.stage_start = max(sh.stage_start, last);
  if (s.frame == 0) {
    const std::uint64_t bytes = s.stage->reqs.size() * s.burst;
    sh.out.first_frame_stages.emplace_back(s.stage->name, bytes);
    sh.out.first_frame_completed.push_back(sh.stage_start);
    sh.out.bytes_first_frame += bytes;
  }
  if (s.last_of_frame) {
    const Time busy = sh.stage_start - sh.frame_start;
    sh.out.access_accum += busy;
    sh.out.per_frame_access.push_back(busy);
    sh.t = max(sh.frame_start + sh.period, sh.stage_start);
  }
  if (i + 1 < sh.segments.size()) {
    if (sh.segments[i + 1].first_of_frame) {
      sh.frame_start = sh.t;
      sh.stage_start = sh.t;
    }
    sh.arrival = sh.stage_start;
    sh.cursor.store(0, std::memory_order_relaxed);
    for (ChanState& st : sh.chans) {
      st.published.store(0, std::memory_order_relaxed);
      st.consumed.store(0, std::memory_order_relaxed);
      st.tmax_valid = false;
      st.meta_idx = 0;
    }
    if (sh.chunked) {
      // Fresh chunked state for the next segment: the stage drain left
      // every queue empty, so the occupancy-based window proof starts
      // clean. Snapshots never outlive a segment (arrival changes).
      sh.seg_index = i + 1;
      sh.has_snapshot = false;
      sh.spec_chunks_since_snapshot = 0;
      sh.segment_rollbacks = 0;
      sh.spec_killed = false;
      stage_next_chunk(sh, 0, sh.segments[i + 1].stage->reqs.size());
    }
  } else {
    sh.out.end_time = sh.t;
  }
}

/// Sense-reversing barrier; the last arriver runs the serial step for
/// segment `i`. Returns false when the run was aborted by a failure.
bool barrier(Shared& sh, std::size_t i, const WorkerProf& wp) {
  const std::uint64_t gen = sh.generation.load(std::memory_order_acquire);
  if (sh.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == sh.workers) {
    static const obs::prof::PhaseId kSerialStep =
        obs::prof::phase_id("engine/serial_step");
    const std::int64_t t0 = wp.on ? obs::prof::now_ns() : 0;
    serial_step(sh, i);
    if (wp.on) obs::prof::tally(kSerialStep, obs::prof::now_ns() - t0);
    sh.arrived.store(0, std::memory_order_relaxed);
    sh.generation.store(gen + 1, std::memory_order_release);
    return !sh.failed.load(std::memory_order_relaxed);
  }
  const std::int64_t t0 = wp.on ? obs::prof::now_ns() : 0;
  unsigned spins = 0;
  while (sh.generation.load(std::memory_order_acquire) == gen) {
    if (sh.failed.load(std::memory_order_relaxed)) {
      if (wp.on) obs::prof::tally(wp.barrier, obs::prof::now_ns() - t0);
      return false;
    }
    spin_pause(spins, sh.oversubscribed);
  }
  if (wp.on) obs::prof::tally(wp.barrier, obs::prof::now_ns() - t0);
  return !sh.failed.load(std::memory_order_relaxed);
}

void run_segment(Shared& sh, const Segment& s, unsigned w,
                 const WorkerProf& wp) {
  const std::uint64_t n = s.stage->reqs.size();
  const std::uint64_t* reqs = s.stage->reqs.data();
  const std::uint32_t channels = sh.sys.channel_count();
  const unsigned T = sh.workers;
  const Time arr = sh.arrival;
  const std::uint16_t sid = s.stage->source_id;
  // Completion maxima already committed this segment (only relevant when
  // entered as the mid-segment fallback of the chunked mode; between
  // segments every slot is <= arr).
  Time local_done = max(arr, sh.slot_last_done[w]);

  // Profiling accumulators, flushed once per segment. Timing the handoff
  // wait costs two clock reads per *episode* (an unbroken run of non-owned
  // positions), never per request; with one worker no episode ever starts.
  const bool pon = wp.on;
  const std::int64_t t_feed0 = pon ? obs::prof::now_ns() : 0;
  std::int64_t handoff_wait_t0 = 0;
  bool handoff_waiting = false;
  std::int64_t ring_stall_ns = 0;
  std::uint64_t ring_stalls = 0;
  std::uint64_t retired = 0;
  std::uint64_t folded = 0;

  const auto pop = [&](channel::Channel& ch) {
    const auto c = ch.process_one();
    local_done = max(local_done, c.done);
    retired += static_cast<std::uint64_t>(pon);
  };

  unsigned spins = 0;
  while (!sh.failed.load(std::memory_order_relaxed)) {
    const std::uint64_t p = sh.cursor.load(std::memory_order_acquire);
    if (p >= n) break;
    const std::uint64_t packed = reqs[p];
    const auto routed = sh.il.route(load::CachedStage::addr_of(packed));
    const std::uint32_t c = routed.channel;
    if (c % T != w) {
      // Not ours: keep our channels' thresholds folded and wait.
      if (pon && !handoff_waiting) {
        handoff_waiting = true;
        handoff_wait_t0 = obs::prof::now_ns();
      }
      for (std::uint32_t k = w; k < channels; k += T) {
        folded += drain_ring(sh.chans[k]);
      }
      spin_pause(spins, sh.oversubscribed);
      continue;
    }
    if (handoff_waiting) {
      obs::prof::tally(wp.handoff, obs::prof::now_ns() - handoff_wait_t0);
      handoff_waiting = false;
    }
    channel::Channel& ch = sh.sys.channel(c);
    ChanState& st = sh.chans[c];
    folded += drain_ring(st);
    if (st.tmax_valid) {
      while (ch.has_pending() &&
             key_less(ch.horizon().ps(), c, st.tmax_ps, st.tmax_idx)) {
        pop(ch);
      }
      st.tmax_valid = false;
    }
    const bool was_full = !ch.can_accept();
    if (was_full) {
      // Threshold = pre-pop horizon: the sequential stall serves other
      // channels up to (h_j, j) *before* serving j itself.
      const std::int64_t hj = ch.horizon().ps();
      for (std::uint32_t k = 0; k < channels; ++k) {
        if (k == c) continue;
        if (k % T == w) {
          // Our own channel: we are its only consumer, and we would never
          // poll its ring while we hold the cursor - fold directly (after
          // the ring, to keep thresholds max-merged with any cross-worker
          // ones already queued).
          folded += drain_ring(sh.chans[k]);
          fold_threshold(sh.chans[k], hj, c);
        } else {
          if (pon) {
            const ChanState& dst = sh.chans[k];
            obs::prof::value(
                wp.occupancy,
                static_cast<std::int64_t>(
                    dst.published.load(std::memory_order_relaxed) -
                    dst.consumed.load(std::memory_order_relaxed)));
          }
          publish(sh, sh.chans[k], hj, c, pon ? &ring_stall_ns : nullptr,
                  &ring_stalls);
        }
      }
    }
    // Release the position: everything below only touches channel c.
    sh.cursor.store(p + 1, std::memory_order_release);
    if (was_full) pop(ch);
    ctrl::Request r;
    r.addr = routed.local;
    r.is_write = load::CachedStage::is_write_of(packed);
    r.arrival = arr;
    r.source = sid;
    ch.enqueue(r);
    ++st.routed;
  }
  if (handoff_waiting) {
    obs::prof::tally(wp.handoff, obs::prof::now_ns() - handoff_wait_t0);
  }

  const std::int64_t t_drain0 = pon ? obs::prof::now_ns() : 0;
  // Stage barrier: drain owned channels to empty. All enqueues into our
  // channels happened on this worker, and trailing thresholds are subsumed
  // by the full drain.
  for (std::uint32_t c = w; c < channels; c += T) {
    sh.chans[c].tmax_valid = false;
    channel::Channel& ch = sh.sys.channel(c);
    while (ch.has_pending()) pop(ch);
  }
  sh.slot_last_done[w] = local_done;

  if (pon) {
    const std::int64_t t_end = obs::prof::now_ns();
    obs::prof::tally(wp.feed, t_drain0 - t_feed0);
    obs::prof::tally(wp.drain, t_end - t_drain0);
    if (ring_stalls > 0) obs::prof::tally(wp.ring_full, ring_stall_ns, ring_stalls);
    if (retired > 0) obs::prof::count(wp.retired, retired);
    if (folded > 0) obs::prof::count(wp.folded, folded);
  }
}

/// run_segment specialized for a single worker: the same service order with
/// the concurrency machinery dissolved. One worker owns every channel and
/// every position, so the cursor needs no atomics, the threshold rings can
/// never hold anything (cross-worker publishes are the only producers) and
/// the handoff wait can never start. What remains is the sequential
/// reference loop itself: route, serve entry thresholds, pop on a full
/// queue, enqueue. Single-threaded runs (the common CLI default) skip every
/// acquire/release and ring poll per request.
void run_segment_single(Shared& sh, const Segment& s, const WorkerProf& wp) {
  const std::uint64_t n = s.stage->reqs.size();
  const std::uint64_t* reqs = s.stage->reqs.data();
  const std::uint32_t channels = sh.sys.channel_count();
  const Time arr = sh.arrival;
  const std::uint16_t sid = s.stage->source_id;
  Time local_done = max(arr, sh.slot_last_done[0]);

  const bool pon = wp.on;
  const std::int64_t t_feed0 = pon ? obs::prof::now_ns() : 0;
  std::uint64_t retired = 0;

  const auto pop = [&](channel::Channel& ch) {
    const auto c = ch.process_one();
    local_done = max(local_done, c.done);
    retired += static_cast<std::uint64_t>(pon);
  };

  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint64_t packed = reqs[p];
    const auto routed = sh.il.route(load::CachedStage::addr_of(packed));
    const std::uint32_t c = routed.channel;
    channel::Channel& ch = sh.sys.channel(c);
    ChanState& st = sh.chans[c];
    if (st.tmax_valid) {
      while (ch.has_pending() &&
             key_less(ch.horizon().ps(), c, st.tmax_ps, st.tmax_idx)) {
        pop(ch);
      }
      st.tmax_valid = false;
    }
    const bool was_full = !ch.can_accept();
    if (was_full) {
      // Threshold = pre-pop horizon: the sequential stall serves other
      // channels up to (h_j, j) *before* serving j itself.
      const std::int64_t hj = ch.horizon().ps();
      for (std::uint32_t k = 0; k < channels; ++k) {
        if (k != c) fold_threshold(sh.chans[k], hj, c);
      }
      pop(ch);
    }
    ctrl::Request r;
    r.addr = routed.local;
    r.is_write = load::CachedStage::is_write_of(packed);
    r.arrival = arr;
    r.source = sid;
    ch.enqueue(r);
    ++st.routed;
  }
  sh.cursor.store(n, std::memory_order_relaxed);  // keep the shared cursor honest

  const std::int64_t t_drain0 = pon ? obs::prof::now_ns() : 0;
  for (std::uint32_t c = 0; c < channels; ++c) {
    sh.chans[c].tmax_valid = false;
    channel::Channel& ch = sh.sys.channel(c);
    while (ch.has_pending()) pop(ch);
  }
  sh.slot_last_done[0] = local_done;

  if (pon) {
    const std::int64_t t_end = obs::prof::now_ns();
    obs::prof::tally(wp.feed, t_drain0 - t_feed0);
    obs::prof::tally(wp.drain, t_end - t_drain0);
    if (retired > 0) obs::prof::count(wp.retired, retired);
  }
}

// ---------------------------------------------------------------------------
// Chunked (epoch-batched) mode.
// ---------------------------------------------------------------------------

/// Local (per-channel) address of a routed global address — Interleaver::
/// route without recomputing the channel (ChunkMeta already has it).
std::uint64_t local_addr(std::uint64_t addr, std::uint32_t channels,
                         std::uint32_t granularity) {
  const std::uint64_t stripe = addr / granularity;
  return (stripe / channels) * granularity + addr % granularity;
}

/// Stage the next chunk window starting at `begin` (serial context only:
/// all channels quiescent). Tier-1 proven-run extension first: while every
/// channel's occupancy plus incoming positions fits its queue, no queue can
/// fill, so no thresholds can publish — entry-threshold pops only shrink
/// occupancy, keeping the bound valid. Otherwise a speculative window of at
/// most `chunk` positions, scheduling an epoch snapshot when due.
void stage_next_chunk(Shared& sh, std::uint64_t begin, std::uint64_t n) {
  sh.chunk_begin = begin;
  sh.take_snapshot = false;
  if (begin >= n) {
    sh.chunk_end = begin;
    sh.chunk_proven = false;
    return;
  }
  const load::ChunkMeta& meta = *sh.metas[sh.seg_index];
  const std::uint32_t channels = sh.sys.channel_count();
  const std::uint64_t step = sh.chunk;
  std::uint64_t b = begin;
  for (;;) {
    const std::uint64_t trial = std::min(b + step, n);
    if (trial == b) break;
    bool ok = true;
    for (std::uint32_t c = 0; c < channels && ok; ++c) {
      const ctrl::MemoryController& mc = sh.sys.channel(c).controller();
      ok = mc.pending() + meta.count_in(c, begin, trial) <= mc.queue_capacity();
    }
    if (!ok) break;
    b = trial;
  }
  if (b > begin) {
    static const obs::prof::PhaseId kProven =
        obs::prof::phase_id("engine/proven_positions");
    obs::prof::count(kProven, b - begin);
    sh.chunk_end = b;
    sh.chunk_proven = true;
    return;
  }
  sh.chunk_end = std::min(begin + step, n);
  sh.chunk_proven = false;
  if (!sh.has_snapshot || sh.spec_chunks_since_snapshot >= kEpochChunks) {
    sh.take_snapshot = true;
    sh.epoch_begin = begin;
    sh.spec_chunks_since_snapshot = 0;
    sh.has_snapshot = true;
  }
  ++sh.spec_chunks_since_snapshot;
}

/// Epoch snapshot of this worker's own channels (parallel; the serial
/// rollback reads it through the barrier). slot_last_done[w] must be
/// flushed before the call.
void snapshot_own(Shared& sh, unsigned w, const WorkerProf& wp) {
  const std::int64_t t0 = wp.on ? obs::prof::now_ns() : 0;
  const std::uint32_t channels = sh.sys.channel_count();
  for (std::uint32_t c = w; c < channels; c += sh.workers) {
    channel::Channel& ch = sh.sys.channel(c);
    if (sh.chan_snaps[c].has_value()) {
      *sh.chan_snaps[c] = ch;
    } else {
      sh.chan_snaps[c].emplace(ch);
    }
    obs::TraceWriter* tw = ch.trace_writer();
    sh.spool_marks[c] = tw != nullptr ? tw->mark() : 0;
    const ChanState& st = sh.chans[c];
    sh.chan_saves[c] = Shared::ChanSave{st.tmax_ps, st.tmax_idx, st.tmax_valid,
                                        st.routed, st.meta_idx};
  }
  sh.done_snap[w] = sh.slot_last_done[w];
  if (wp.on) obs::prof::tally(wp.snapshot, obs::prof::now_ns() - t0);
}

/// Speculative execution of channel `c`'s positions in [a, b). Entry
/// thresholds (published by earlier chunks) apply at the first own
/// position, exactly as the per-request protocol would; thresholds
/// published *inside* the chunk are assumed not to bind — the validation
/// walk checks that assumption. In a proven window no queue can fill, so
/// the records are skipped and tmax commits immediately.
void spec_channel(Shared& sh, const Segment& s, const load::ChunkMeta& meta,
                  std::uint32_t c, std::uint64_t a, std::uint64_t b,
                  bool proven, Time& local_done, std::uint64_t& retired,
                  std::uint64_t& publishes, std::uint64_t& processed) {
  channel::Channel& ch = sh.sys.channel(c);
  ChanState& st = sh.chans[c];
  const std::vector<std::uint32_t>& pos = meta.pos_of[c];
  const std::uint64_t* reqs = s.stage->reqs.data();
  const std::uint16_t sid = s.stage->source_id;
  const Time arr = sh.arrival;
  std::uint32_t i = st.meta_idx;
  bool entry_pending = st.tmax_valid;
  while (i < pos.size() && pos[i] < b) {
    const std::uint64_t p = pos[i];
    if (entry_pending) {
      while (ch.has_pending() &&
             key_less(ch.horizon().ps(), c, st.tmax_ps, st.tmax_idx)) {
        local_done = max(local_done, ch.process_one().done);
        ++retired;
      }
      entry_pending = false;
      // Keep tmax for the validation walk's entry state; a proven window
      // has no validation, so the application commits right here.
      if (proven) st.tmax_valid = false;
    }
    const bool was_full = !ch.can_accept();
    if (!proven) {
      const std::uint64_t rel = p - a;
      sh.h_pre[rel] = ch.horizon().ps();
      sh.flags[rel] = static_cast<std::uint8_t>((was_full ? 1u : 0u) |
                                                (ch.has_pending() ? 2u : 0u));
    }
    if (was_full) {
      assert(!proven);  // the occupancy bound proved no fill was possible
      local_done = max(local_done, ch.process_one().done);
      ++retired;
      ++publishes;
    }
    const std::uint64_t packed = reqs[p];
    ctrl::Request r;
    r.addr = local_addr(load::CachedStage::addr_of(packed), meta.channels,
                        meta.granularity);
    r.is_write = load::CachedStage::is_write_of(packed);
    r.arrival = arr;
    r.source = sid;
    ch.enqueue(r);
    ++st.routed;
    ++i;
    ++processed;
  }
  st.meta_idx = i;
}

/// Validation walk for channel `c` over [a, b): replay the chunk's publish
/// sequence from the speculation records and flag the first own position
/// where a threshold would have popped but speculation did not. Publishes
/// recorded before the *global* first divergence are protocol-exact, so the
/// min over channels of the flagged positions is the exact first
/// divergence. On a clean walk the leftover threshold becomes the exit
/// state (promoted to tmax on commit).
void validate_channel(Shared& sh, const load::ChunkMeta& meta, std::uint32_t c,
                      std::uint64_t a, std::uint64_t b,
                      std::uint64_t& div_min) {
  ChanState& st = sh.chans[c];
  std::int64_t t_ps = st.tmax_ps;
  std::uint32_t t_idx = st.tmax_idx;
  bool t_valid = st.tmax_valid;
  const std::uint8_t* chan = meta.chan.data();
  for (std::uint64_t p = a; p < b; ++p) {
    const std::uint64_t rel = p - a;
    const std::uint8_t fl = sh.flags[rel];
    if (chan[p] == c) {
      if (t_valid && (fl & 2u) != 0 &&
          key_less(sh.h_pre[rel], c, t_ps, t_idx)) {
        div_min = std::min(div_min, p);
        return;  // records beyond the first divergence can be garbage
      }
      t_valid = false;
    } else if ((fl & 1u) != 0) {
      const std::int64_t h = sh.h_pre[rel];
      const std::uint32_t k = chan[p];
      if (!t_valid || key_less(t_ps, t_idx, h, k)) {
        t_ps = h;
        t_idx = k;
        t_valid = true;
      }
    }
  }
  st.exit_ps = t_ps;
  st.exit_idx = t_idx;
  st.exit_valid = t_valid;
}

/// Replay stream range [a, b) of the current segment single-threaded with
/// the exact per-request protocol, folding completion times into worker
/// slot 0. Requires channel state that is protocol-exact at position a.
void replay_serial_range(Shared& sh, std::uint64_t a, std::uint64_t b) {
  const Segment& s = sh.segments[sh.seg_index];
  const load::ChunkMeta& meta = *sh.metas[sh.seg_index];
  const std::uint32_t channels = sh.sys.channel_count();
  const std::uint64_t* reqs = s.stage->reqs.data();
  const std::uint16_t sid = s.stage->source_id;
  const Time arr = sh.arrival;
  Time done0 = sh.slot_last_done[0];
  for (std::uint64_t p = a; p < b; ++p) {
    const std::uint32_t c = meta.chan[p];
    channel::Channel& ch = sh.sys.channel(c);
    ChanState& st = sh.chans[c];
    if (st.tmax_valid) {
      while (ch.has_pending() &&
             key_less(ch.horizon().ps(), c, st.tmax_ps, st.tmax_idx)) {
        done0 = max(done0, ch.process_one().done);
      }
      st.tmax_valid = false;
    }
    if (!ch.can_accept()) {
      const std::int64_t hj = ch.horizon().ps();
      for (std::uint32_t k = 0; k < channels; ++k) {
        if (k != c) fold_threshold(sh.chans[k], hj, c);
      }
      done0 = max(done0, ch.process_one().done);
    }
    const std::uint64_t packed = reqs[p];
    ctrl::Request r;
    r.addr = local_addr(load::CachedStage::addr_of(packed), meta.channels,
                        meta.granularity);
    r.is_write = load::CachedStage::is_write_of(packed);
    r.arrival = arr;
    r.source = sid;
    ch.enqueue(r);
    ++st.routed;
  }
  sh.slot_last_done[0] = done0;
}

/// Serial rollback: restore the epoch snapshot, replay [epoch_begin, b)
/// with the exact per-request protocol single-threaded, then re-snapshot
/// at b so replayed (protocol-exact) state is never rolled back again.
void rollback_and_replay(Shared& sh, std::uint64_t b) {
  const load::ChunkMeta& meta = *sh.metas[sh.seg_index];
  const std::uint32_t channels = sh.sys.channel_count();
  for (std::uint32_t c = 0; c < channels; ++c) {
    channel::Channel& ch = sh.sys.channel(c);
    ch = *sh.chan_snaps[c];
    obs::TraceWriter* tw = ch.trace_writer();
    if (tw != nullptr) tw->rewind(sh.spool_marks[c]);
    ChanState& st = sh.chans[c];
    const Shared::ChanSave& sv = sh.chan_saves[c];
    st.tmax_ps = sv.tmax_ps;
    st.tmax_idx = sv.tmax_idx;
    st.tmax_valid = sv.tmax_valid;
    st.routed = sv.routed;
    st.meta_idx = sv.meta_idx;
  }
  for (unsigned x = 0; x < sh.workers; ++x) {
    sh.slot_last_done[x] = sh.done_snap[x];
  }

  replay_serial_range(sh, sh.epoch_begin, b);

  for (std::uint32_t c = 0; c < channels; ++c) {
    channel::Channel& ch = sh.sys.channel(c);
    *sh.chan_snaps[c] = ch;
    obs::TraceWriter* tw = ch.trace_writer();
    sh.spool_marks[c] = tw != nullptr ? tw->mark() : 0;
    ChanState& st = sh.chans[c];
    st.meta_idx = static_cast<std::uint32_t>(
        std::lower_bound(meta.pos_of[c].begin(), meta.pos_of[c].end(),
                         static_cast<std::uint32_t>(b)) -
        meta.pos_of[c].begin());
    sh.chan_saves[c] = Shared::ChanSave{st.tmax_ps, st.tmax_idx, st.tmax_valid,
                                        st.routed, st.meta_idx};
  }
  for (unsigned x = 0; x < sh.workers; ++x) {
    sh.done_snap[x] = sh.slot_last_done[x];
  }
  sh.epoch_begin = b;
  sh.spec_chunks_since_snapshot = 0;
  sh.has_snapshot = true;
}

/// The serial step at a chunk's commit barrier: reduce divergences, roll
/// back if needed, trip the kill switch, stage the next window.
void serial_chunk_step(Shared& sh) {
  const Segment& s = sh.segments[sh.seg_index];
  const std::uint64_t n = s.stage->reqs.size();
  const std::uint64_t b = sh.chunk_end;
  sh.rolled_back = false;
  if (!sh.chunk_proven) {
    std::uint64_t div = kNoDivergence;
    for (unsigned w = 0; w < sh.workers; ++w) {
      div = std::min(div, sh.div_min[w]);
      sh.div_min[w] = kNoDivergence;
    }
    const bool genuine = div != kNoDivergence;
    if (genuine || sh.spec_mode == SpecMode::kForceRollback) {
      static const obs::prof::PhaseId kRollback =
          obs::prof::phase_id("engine/rollback");
      const bool pon = obs::prof::enabled();
      const std::int64_t t0 = pon ? obs::prof::now_ns() : 0;
      rollback_and_replay(sh, b);
      if (pon) obs::prof::tally(kRollback, obs::prof::now_ns() - t0);
      sh.rolled_back = true;
      if (genuine && ++sh.segment_rollbacks >= kMaxRollbacksPerSegment) {
        // Speculation keeps diverging on this segment: finish it serially
        // right here with the exact protocol (far cheaper than the
        // per-request handoff loop) and let the workers drop to the drain.
        sh.spec_killed = true;
        replay_serial_range(sh, b, n);
        sh.chunk_begin = n;
        sh.chunk_end = n;
        return;
      }
    }
  }
  stage_next_chunk(sh, b, n);
}

/// Chunk barrier; the last arriver optionally runs the serial chunk step.
/// Returns false when the run was aborted by a failure.
bool chunk_barrier(Shared& sh, const WorkerProf& wp, bool serial) {
  const std::uint64_t gen = sh.generation.load(std::memory_order_acquire);
  if (sh.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == sh.workers) {
    if (serial) {
      static const obs::prof::PhaseId kEpochPublish =
          obs::prof::phase_id("engine/epoch_publish");
      const std::int64_t t0 = wp.on ? obs::prof::now_ns() : 0;
      serial_chunk_step(sh);
      if (wp.on) obs::prof::tally(kEpochPublish, obs::prof::now_ns() - t0);
    }
    sh.arrived.store(0, std::memory_order_relaxed);
    sh.generation.store(gen + 1, std::memory_order_release);
    return !sh.failed.load(std::memory_order_relaxed);
  }
  const std::int64_t t0 = wp.on ? obs::prof::now_ns() : 0;
  unsigned spins = 0;
  while (sh.generation.load(std::memory_order_acquire) == gen) {
    if (sh.failed.load(std::memory_order_relaxed)) {
      if (wp.on) obs::prof::tally(wp.barrier, obs::prof::now_ns() - t0);
      return false;
    }
    spin_pause(spins, sh.oversubscribed);
  }
  if (wp.on) obs::prof::tally(wp.barrier, obs::prof::now_ns() - t0);
  return !sh.failed.load(std::memory_order_relaxed);
}

void run_segment_chunked(Shared& sh, const Segment& s, unsigned w,
                         const WorkerProf& wp) {
  const std::uint64_t n = s.stage->reqs.size();
  const load::ChunkMeta& meta = *sh.metas[sh.seg_index];
  const std::uint32_t channels = sh.sys.channel_count();
  const unsigned T = sh.workers;
  Time local_done = max(sh.arrival, sh.slot_last_done[w]);

  const bool pon = wp.on;
  const std::int64_t t_feed0 = pon ? obs::prof::now_ns() : 0;
  std::uint64_t retired = 0;
  std::uint64_t publishes = 0;

  while (!sh.failed.load(std::memory_order_relaxed)) {
    const std::uint64_t a = sh.chunk_begin;
    const std::uint64_t b = sh.chunk_end;
    if (a >= n || sh.spec_killed) break;
    const bool proven = sh.chunk_proven;
    if (sh.take_snapshot) {
      sh.slot_last_done[w] = local_done;
      snapshot_own(sh, w, wp);
    }

    const std::int64_t t_spec0 = pon ? obs::prof::now_ns() : 0;
    std::uint64_t processed = 0;
    for (std::uint32_t c = w; c < channels; c += T) {
      spec_channel(sh, s, meta, c, a, b, proven, local_done, retired,
                   publishes, processed);
    }
    if (pon) {
      obs::prof::tally(wp.speculate, obs::prof::now_ns() - t_spec0);
      if (!proven) obs::prof::value(wp.spec_depth, static_cast<std::int64_t>(processed));
    }
    sh.slot_last_done[w] = local_done;

    if (proven) {
      if (!chunk_barrier(sh, wp, true)) return;
    } else {
      if (!chunk_barrier(sh, wp, false)) return;
      const std::int64_t t_val0 = pon ? obs::prof::now_ns() : 0;
      std::uint64_t dmin = kNoDivergence;
      for (std::uint32_t c = w; c < channels; c += T) {
        validate_channel(sh, meta, c, a, b, dmin);
      }
      sh.div_min[w] = dmin;
      if (pon) obs::prof::tally(wp.validate, obs::prof::now_ns() - t_val0);
      if (!chunk_barrier(sh, wp, true)) return;
      if (sh.rolled_back) {
        local_done = sh.slot_last_done[w];
      } else {
        for (std::uint32_t c = w; c < channels; c += T) {
          ChanState& st = sh.chans[c];
          st.tmax_ps = st.exit_ps;
          st.tmax_idx = st.exit_idx;
          st.tmax_valid = st.exit_valid;
        }
      }
    }
  }

  if (pon) {
    obs::prof::tally(wp.feed, obs::prof::now_ns() - t_feed0);
    if (retired > 0) obs::prof::count(wp.retired, retired);
    if (publishes > 0) obs::prof::count(wp.publishes, publishes);
  }
  const std::int64_t t_drain0 = pon ? obs::prof::now_ns() : 0;
  std::uint64_t drain_retired = 0;
  for (std::uint32_t c = w; c < channels; c += T) {
    sh.chans[c].tmax_valid = false;
    channel::Channel& ch = sh.sys.channel(c);
    while (ch.has_pending()) {
      local_done = max(local_done, ch.process_one().done);
      ++drain_retired;
    }
  }
  sh.slot_last_done[w] = local_done;
  if (pon) {
    obs::prof::tally(wp.drain, obs::prof::now_ns() - t_drain0);
    if (drain_retired > 0) obs::prof::count(wp.retired, drain_retired);
  }
}

void run_worker(Shared& sh, unsigned w) {
  const WorkerProf wp = make_worker_prof(w);
  try {
    for (std::size_t i = 0; i < sh.segments.size(); ++i) {
      if (sh.chunked) {
        run_segment_chunked(sh, sh.segments[i], w, wp);
      } else if (sh.workers == 1) {
        run_segment_single(sh, sh.segments[i], wp);
      } else {
        run_segment(sh, sh.segments[i], w, wp);
      }
      if (!barrier(sh, i, wp)) return;
    }
  } catch (...) {
    sh.failed.store(true, std::memory_order_relaxed);
    throw;
  }
}

}  // namespace

unsigned sim_threads_from_env() {
  const char* env = std::getenv("MCM_SIM_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 1;
  return static_cast<unsigned>(v);
}

unsigned resolve_sim_threads(unsigned requested, std::uint32_t channels) {
  const unsigned want = requested > 0 ? requested : sim_threads_from_env();
  return std::max(1u, std::min(want, channels));
}

unsigned sim_chunk_from_env() {
  const char* env = std::getenv("MCM_SIM_CHUNK");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 0;
  return static_cast<unsigned>(v);
}

unsigned resolve_sim_chunk(unsigned requested) {
  const unsigned want = requested > 0 ? requested : sim_chunk_from_env();
  return want > 0 ? want : kDefaultSimChunk;
}

ShardedRunOutput run_sharded_frames(
    multichannel::MemorySystem& sys,
    const std::vector<const load::CachedWorkload*>& frame_workloads,
    Time period, unsigned sim_threads, unsigned sim_chunk) {
  Shared sh(sys);
  sh.period = period;
  sh.workers = resolve_sim_threads(sim_threads, sys.channel_count());
  const unsigned hw = std::thread::hardware_concurrency();
  sh.oversubscribed = hw > 0 && sh.workers > hw;

  const std::uint32_t channels = sys.channel_count();
  sh.chunk = resolve_sim_chunk(sim_chunk);
  sh.spec_mode = spec_mode_from_env();
  // Chunked speculation needs >1 worker to pay, a rewindable (or absent)
  // trace writer on every channel for rollback, and <=255 channels for the
  // ChunkMeta byte-wide routing table.
  bool chunked = sh.workers > 1 && sh.chunk > 1 &&
                 sh.spec_mode != SpecMode::kOff && channels > 1 &&
                 channels <= 255;
  for (std::uint32_t c = 0; chunked && c < channels; ++c) {
    obs::TraceWriter* tw = sys.channel(c).trace_writer();
    if (tw != nullptr && !tw->supports_rewind()) chunked = false;
  }

  std::unordered_map<const load::CachedStage*,
                     std::shared_ptr<const load::ChunkMeta>>
      meta_by_stage;
  for (std::size_t f = 0; f < frame_workloads.size(); ++f) {
    const load::CachedWorkload* wl = frame_workloads[f];
    assert(!wl->stages.empty());
    for (std::size_t si = 0; si < wl->stages.size(); ++si) {
      Segment s;
      s.stage = &wl->stages[si];
      s.burst = wl->burst_bytes;
      s.frame = static_cast<int>(f);
      s.first_of_frame = si == 0;
      s.last_of_frame = si + 1 == wl->stages.size();
      sh.segments.push_back(s);
      if (chunked) {
        auto& meta = meta_by_stage[s.stage];
        if (meta == nullptr) {
          meta = load::StreamCache::instance().chunk_meta(
              *wl, si, channels, sh.il.granularity());
        }
        sh.metas.push_back(meta);
      }
    }
  }
  sh.chans = std::vector<ChanState>(sys.channel_count());
  sh.slot_last_done.assign(sh.workers, Time::zero());

  if (chunked) {
    sh.chunked = true;
    std::uint64_t max_n = 0;
    for (const Segment& s : sh.segments) {
      max_n = std::max<std::uint64_t>(max_n, s.stage->reqs.size());
    }
    // Bound the per-chunk record arrays by the largest segment.
    sh.chunk = static_cast<unsigned>(std::min<std::uint64_t>(
        sh.chunk, std::max<std::uint64_t>(max_n, 2)));
    sh.h_pre.assign(sh.chunk, 0);
    sh.flags.assign(sh.chunk, 0);
    sh.div_min.assign(sh.workers, kNoDivergence);
    sh.chan_snaps.resize(channels);
    sh.spool_marks.assign(channels, 0);
    sh.chan_saves.assign(channels, Shared::ChanSave{});
    sh.done_snap.assign(sh.workers, Time::zero());
    sh.seg_index = 0;
    stage_next_chunk(sh, 0, sh.segments.front().stage->reqs.size());
  }

  if (sh.workers == 1) {
    run_worker(sh, 0);
  } else {
    exec::ThreadPool pool(sh.workers - 1);
    for (unsigned w = 1; w < sh.workers; ++w) {
      pool.submit([&sh, w] { run_worker(sh, w); });
    }
    try {
      run_worker(sh, 0);
    } catch (...) {
      // Workers observe `failed` and unwind; surface the first error.
      try {
        pool.wait_idle();
      } catch (...) {
      }
      throw;
    }
    pool.wait_idle();
  }

  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    sys.add_route_count(c, sh.chans[c].routed);
  }
  return sh.out;
}

ShardedRunOutput run_sequential_frames(
    multichannel::MemorySystem& sys,
    const std::vector<const load::CachedWorkload*>& frame_workloads,
    Time period) {
  ShardedRunOutput out;
  Time t = Time::zero();
  for (std::size_t f = 0; f < frame_workloads.size(); ++f) {
    const load::CachedWorkload* wl = frame_workloads[f];
    assert(!wl->stages.empty());
    const Time frame_start = t;
    Time stage_start = frame_start;
    for (const load::CachedStage& stage : wl->stages) {
      Time last_done = stage_start;
      for (const std::uint64_t packed : stage.reqs) {
        ctrl::Request r;
        r.addr = load::CachedStage::addr_of(packed);  // global; submit routes
        r.is_write = load::CachedStage::is_write_of(packed);
        r.arrival = stage_start;
        r.source = stage.source_id;
        while (!sys.try_submit(r)) {
          const auto c = sys.process_next();
          assert(c.has_value());  // a full queue implies pending work
          last_done = max(last_done, c->done);
        }
      }
      // Stage barrier: the next stage consumes this stage's output frame.
      while (const auto c = sys.process_next()) last_done = max(last_done, c->done);
      stage_start = max(stage_start, last_done);
      if (f == 0) {
        const std::uint64_t bytes = stage.reqs.size() * wl->burst_bytes;
        out.first_frame_stages.emplace_back(stage.name, bytes);
        out.first_frame_completed.push_back(stage_start);
        out.bytes_first_frame += bytes;
      }
    }
    const Time busy = stage_start - frame_start;
    out.access_accum += busy;
    out.per_frame_access.push_back(busy);
    t = max(frame_start + period, stage_start);
  }
  out.end_time = t;
  return out;
}

}  // namespace mcm::core
