// Closed-form first-order model of the frame access time and average power,
// used to cross-validate the transaction-level simulator (and as a fast
// screening tool for design-space sweeps: ~microseconds instead of seconds).
//
// The model counts, per channel and per Fig. 1 stage:
//   - data-bus cycles (BL/2 per burst),
//   - read/write turnaround bubbles (tWTR + CL + 1 per direction pair,
//     with the FR-FCFS queue batching directions),
//   - row-miss bubbles (sequential streams miss once per row; RBC bank
//     rotation hides most of the ACT/PRE work behind data transfer),
//   - the refresh duty factor tRFC/tREFI,
// and charges the IDD-based event/residency energies over the frame period.
// Assumptions and the validation band are documented in DESIGN.md; the
// estimator is intentionally simple and is held to ~15-20 % of the simulator
// by tests/core/analytic_test.cpp.
#pragma once

#include "core/frame_simulator.hpp"

namespace mcm::core {

struct AnalyticBreakdownCycles {
  double data = 0;
  double turnaround = 0;
  double row = 0;
  double refresh = 0;

  [[nodiscard]] double total() const { return data + turnaround + row + refresh; }
};

struct AnalyticResult {
  Time access_time;
  Time frame_period;
  double efficiency = 0;  // data cycles / total busy cycles
  double total_power_mw = 0;
  double dram_power_mw = 0;
  double interface_power_mw = 0;
  bool meets_realtime = false;
  AnalyticBreakdownCycles cycles;  // per channel, per frame
};

[[nodiscard]] AnalyticResult analytic_estimate(
    const multichannel::SystemConfig& system, const video::UseCaseParams& usecase,
    const load::LoadOptions& load = {});

}  // namespace mcm::core
