// Generic stage-source runner: drives an ordered list of TrafficSources
// (stage barrier between them, as in the Fig. 1 state machine) through a
// memory system and reports access time and power. FrameSimulator is the
// use-case-specific front end; this is the building block for custom
// workloads (playback, replayed traces, mixed masters).
#pragma once

#include <memory>
#include <vector>

#include "load/source.hpp"
#include "multichannel/memory_system.hpp"

namespace mcm::core {

struct SourceRunResult {
  Time access_time;  // completion of the last stage
  Time window;       // power-accounting window (>= access time)
  double total_power_mw = 0;
  double dram_power_mw = 0;
  double interface_power_mw = 0;
  std::uint64_t bytes = 0;
  multichannel::SystemStats stats;
  multichannel::SystemPowerReport power;
};

/// Run the stages in order (back-to-back within a stage, barrier between
/// stages) and finalize the system at max(access time, window_hint).
[[nodiscard]] SourceRunResult run_stage_sources(
    const multichannel::SystemConfig& system,
    std::vector<std::unique_ptr<load::TrafficSource>> sources, Time window_hint);

}  // namespace mcm::core
