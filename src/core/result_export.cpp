#include "core/result_export.hpp"

#include <string>

namespace mcm::core {

void export_config(obs::JsonValue& cfg, const multichannel::SystemConfig& sys,
                   const video::UseCaseParams& usecase) {
  cfg["channels"] = sys.channels;
  cfg["freq_mhz"] = sys.freq.mhz();
  cfg["interleave_bytes"] = sys.interleave_bytes;
  cfg["address_mux"] = to_string(sys.mux);
  cfg["page_policy"] = to_string(sys.controller.page_policy);
  cfg["scheduler"] = to_string(sys.controller.scheduler);
  cfg["queue_depth"] = sys.controller.queue_depth;
  cfg["powerdown_idle_cycles"] = sys.controller.powerdown_idle_cycles;
  cfg["selfrefresh_idle_cycles"] = sys.controller.selfrefresh_idle_cycles;
  cfg["refresh_postpone_max"] = sys.controller.refresh_postpone_max;
  cfg["device/banks"] = sys.device.org.banks;
  cfg["device/capacity_bits"] = sys.device.org.capacity_bits;
  cfg["device/word_bits"] = sys.device.org.word_bits;
  cfg["device/burst_length"] = sys.device.org.burst_length;
  cfg["device/row_bytes"] = sys.device.org.row_bytes;
  // Heterogeneous members only, so homogeneous reports stay byte-identical.
  if (sys.heterogeneous()) {
    obs::JsonValue& classes = cfg["channel_classes"];
    classes = obs::JsonValue::array();
    for (std::uint32_t c = 0; c < sys.channels; ++c) {
      classes.push(obs::JsonValue{std::string(to_string(sys.channel_class(c)))});
    }
  }
  if (sys.vault_group >= 2) cfg["vault_group"] = sys.vault_group;

  const auto& spec = video::level_spec(usecase.level);
  cfg["level"] = spec.name;
  cfg["format"] = spec.format;
  cfg["width"] = spec.resolution.width;
  cfg["height"] = spec.resolution.height;
  cfg["fps"] = spec.fps;
}

namespace {

void export_latency(obs::JsonValue& out, const Accumulator& acc,
                    const Histogram& hist) {
  out["count"] = acc.count();
  out["mean_ns"] = acc.mean();
  out["min_ns"] = acc.min();
  out["max_ns"] = acc.max();
  out["stddev_ns"] = acc.stddev();
  out["p50_ns"] = hist.percentile(0.50);
  out["p95_ns"] = hist.percentile(0.95);
  out["p99_ns"] = hist.percentile(0.99);
}

}  // namespace

void export_result(obs::JsonValue& point, const FrameSimResult& r) {
  point["access_ms"] = r.access_time.ms();
  point["frame_period_ms"] = r.frame_period.ms();
  point["window_ms"] = r.window.ms();
  point["meets_realtime"] = r.meets_realtime;
  point["meets_realtime_with_margin"] = r.meets_realtime_with_margin;

  point["total_power_mw"] = r.total_power_mw;
  point["dram_power_mw"] = r.dram_power_mw;
  point["interface_power_mw"] = r.interface_power_mw;

  point["bytes_per_frame"] = r.bytes_per_frame;
  point["achieved_bandwidth_bytes_per_s"] = r.achieved_bandwidth_bytes_per_s;
  point["demand_bandwidth_bytes_per_s"] = r.demand_bandwidth_bytes_per_s;

  obs::JsonValue& stats = point["stats"];
  const auto& s = r.stats;
  stats["reads"] = s.reads;
  stats["writes"] = s.writes;
  stats["bytes"] = s.bytes;
  stats["row_hits"] = s.row_hits;
  stats["row_misses"] = s.row_misses;
  stats["row_conflicts"] = s.row_conflicts;
  stats["row_hit_rate"] = s.row_hit_rate();
  stats["activates"] = s.activates;
  stats["precharges"] = s.precharges;
  stats["refreshes"] = s.refreshes;
  stats["powerdown_entries"] = s.powerdown_entries;
  stats["selfrefresh_entries"] = s.selfrefresh_entries;

  export_latency(point["latency"], s.latency_ns, s.latency_hist_ns);

  obs::JsonValue& per_channel = point["per_channel"];
  per_channel = obs::JsonValue::array();
  for (std::size_t i = 0; i < s.per_channel.size(); ++i) {
    const auto& st = s.per_channel[i];
    obs::JsonValue ch = obs::JsonValue::object();
    ch["channel"] = static_cast<std::uint64_t>(i);
    ch["accesses"] = st.accesses();
    ch["row_hit_rate"] = st.row_hit_rate();
    ch["row_conflicts"] = st.row_conflicts;
    ch["queue_depth_mean"] = st.queue_depth.summary().mean();
    ch["queue_depth_p95"] = st.queue_depth.percentile(0.95);
    export_latency(ch["latency"], st.latency_ns(), st.latency_hist_ns);
    per_channel.push(std::move(ch));
  }
}

}  // namespace mcm::core
