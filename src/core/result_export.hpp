// Bridges simulation results into the observability layer: fills RunReport
// config/point objects from SystemConfig / UseCaseParams / FrameSimResult so
// every bench and example emits the same machine-readable schema
// (mcm.run_report/v1) instead of hand-rolled printing.
#pragma once

#include "core/frame_simulator.hpp"
#include "obs/json.hpp"

namespace mcm::core {

/// Stamp the memory-system + use-case configuration into `cfg` (channels,
/// frequency, device, interleave, controller policies, format).
void export_config(obs::JsonValue& cfg, const multichannel::SystemConfig& sys,
                   const video::UseCaseParams& usecase);

/// Fill a run-report point with the tier-1 result measures: access time,
/// real-time verdicts, power, bandwidth, aggregate stats, p50/p95/p99
/// request latency, and per-channel row-hit rates / latency percentiles.
void export_result(obs::JsonValue& point, const FrameSimResult& r);

}  // namespace mcm::core
