#include "core/experiments.hpp"

#include <future>
#include <thread>

namespace mcm::core {
namespace {

/// Run one simulation per point concurrently (each point is an independent,
/// deterministic simulation; results are position-stable).
std::vector<SweepPoint> run_points(std::vector<SweepPoint> points,
                                   const ExperimentConfig& cfg) {
  const FrameSimulator sim(cfg.sim);
  std::vector<std::future<FrameSimResult>> futures;
  futures.reserve(points.size());
  for (const auto& p : points) {
    futures.push_back(std::async(std::launch::async, [&cfg, &sim, p] {
      multichannel::SystemConfig sys = cfg.base;
      sys.freq = Frequency{p.freq_mhz};
      sys.channels = p.channels;
      video::UseCaseParams uc = cfg.usecase;
      uc.level = p.level;
      return sim.run(sys, uc);
    }));
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].result = futures[i].get();
  }
  return points;
}

}  // namespace

ExperimentConfig ExperimentConfig::paper_defaults() {
  ExperimentConfig cfg;
  cfg.base.device = dram::DeviceSpec::next_gen_mobile_ddr();
  cfg.base.freq = Frequency{400.0};
  cfg.base.channels = 4;
  cfg.base.interleave_bytes = 16;
  cfg.base.mux = ctrl::AddressMux::kRBC;
  cfg.base.controller.page_policy = ctrl::PagePolicy::kOpen;
  cfg.base.controller.scheduler = ctrl::SchedulerPolicy::kFrFcfs;
  cfg.base.controller.queue_depth = 8;
  cfg.base.controller.powerdown_idle_cycles = 1;
  return cfg;
}

std::vector<double> paper_frequencies() {
  return {200.0, 266.0, 333.0, 400.0, 466.0, 533.0};
}

std::vector<std::uint32_t> paper_channel_counts() { return {1, 2, 4, 8}; }

std::vector<SweepPoint> sweep_frequency(const ExperimentConfig& cfg,
                                        video::H264Level level) {
  std::vector<SweepPoint> points;
  for (const std::uint32_t channels : paper_channel_counts()) {
    for (const double freq : paper_frequencies()) {
      SweepPoint p;
      p.freq_mhz = freq;
      p.channels = channels;
      p.level = level;
      points.push_back(p);
    }
  }
  return run_points(std::move(points), cfg);
}

std::vector<SweepPoint> sweep_formats(const ExperimentConfig& cfg, double freq_mhz) {
  std::vector<SweepPoint> points;
  for (const std::uint32_t channels : paper_channel_counts()) {
    for (const video::H264Level level : video::kAllLevels) {
      SweepPoint p;
      p.freq_mhz = freq_mhz;
      p.channels = channels;
      p.level = level;
      points.push_back(p);
    }
  }
  return run_points(std::move(points), cfg);
}

}  // namespace mcm::core
