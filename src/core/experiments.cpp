// Paper-default configuration and sweep axes. The sweep functions declared
// in experiments.hpp are implemented by the exploration engine
// (src/explore/sweeps.cpp) so they parallelize on the shared thread pool.
#include "core/experiments.hpp"

namespace mcm::core {

ExperimentConfig ExperimentConfig::paper_defaults() {
  ExperimentConfig cfg;
  cfg.base.device = dram::DeviceSpec::next_gen_mobile_ddr();
  cfg.base.freq = Frequency{400.0};
  cfg.base.channels = 4;
  cfg.base.interleave_bytes = 16;
  cfg.base.mux = ctrl::AddressMux::kRBC;
  cfg.base.controller.page_policy = ctrl::PagePolicy::kOpen;
  cfg.base.controller.scheduler = ctrl::SchedulerPolicy::kFrFcfs;
  cfg.base.controller.queue_depth = 8;
  cfg.base.controller.powerdown_idle_cycles = 1;
  return cfg;
}

std::vector<double> paper_frequencies() {
  return {200.0, 266.0, 333.0, 400.0, 466.0, 533.0};
}

std::vector<std::uint32_t> paper_channel_counts() { return {1, 2, 4, 8}; }

}  // namespace mcm::core
