// FrameSimulator: runs the video recording use case against a multi-channel
// memory system and reports the paper's two headline measures - per-frame
// access time (Figs. 3 and 4) and average memory-subsystem power over the
// frame period (Fig. 5) - plus detailed command/row/energy statistics.
//
// Semantics follow the paper's load model (Section III): the processing
// chain is a state machine; each state (stage) issues its memory requests
// back-to-back, stages in data-dependency order, and the "total access time"
// of a frame is the time the memory subsystem needs to serve all of it. The
// tail of the frame period is idle: the power-down governor and refresh
// catch-up run there, which is what keeps multi-channel average power close
// to single-channel (Fig. 5's main observation).
#pragma once

#include <string>
#include <vector>

#include "load/usecase_sources.hpp"
#include "multichannel/memory_system.hpp"
#include "video/surfaces.hpp"
#include "video/usecase.hpp"

namespace mcm::obs {
class MetricsRegistry;
}  // namespace mcm::obs

namespace mcm::core {

/// How the use-case traffic is driven through the memory system.
enum class ExecutionMode : std::uint8_t {
  /// The paper's load model: one state machine, each stage's requests issued
  /// back-to-back, stages in order (display/audio volumes are stages too).
  kStateMachine,
  /// Extension: DisplayCtrl and audio run as concurrent paced masters (the
  /// display scans out continuously at 60 Hz) competing with the pipeline.
  kConcurrent,
};

struct FrameSimOptions {
  int frames = 1;  // frames to simulate (stats averaged per frame)
  ExecutionMode mode = ExecutionMode::kStateMachine;
  load::LoadOptions load;
  double processing_margin = 0.15;  // paper Fig. 5: 15 % margin for data processing

  /// GOP structure: every gop_length-th frame is an I frame (no reference
  /// traffic). 0 or 1 = every frame predicted (the paper's steady state).
  int gop_length = 0;

  /// Worker threads for channel-sharded execution of kStateMachine runs
  /// (0 = MCM_SIM_THREADS, default 1; clamped to the channel count).
  /// Results are byte-identical at every setting.
  unsigned sim_threads = 0;

  /// Positions per speculative chunk for the epoch-batched sharded engine
  /// (0 = MCM_SIM_CHUNK, then the engine default; 1 forces the per-request
  /// protocol). Results are byte-identical at every setting.
  unsigned sim_chunk = 0;

  /// Force the historical sequential feed loop instead of the sharded
  /// engine (equivalence tests; kConcurrent always uses it).
  bool legacy_feed = false;

  /// When non-empty, stream the full DRAM command + request-span trace of
  /// the run to this file as JSONL (schema mcm.trace/v1). Empty = no
  /// tracing; the only per-command cost is a null-pointer check.
  std::string trace_path;
  std::size_t trace_buffer_events = 4096;

  /// When set, the memory system's full metric catalogue is published here
  /// after the run (per-channel, per-bank, interleaver, residency).
  obs::MetricsRegistry* metrics = nullptr;

  /// Self-profiling (obs/prof). `profile` force-enables the process-wide
  /// profiler for this run (MCM_PROF=1 in the environment does the same for
  /// every run). When prof_path is non-empty the accumulated profile is
  /// collected - and the global profiler reset - after the run and written
  /// there as mcm.prof/v1 JSON; prof_trace_path additionally writes a
  /// Chrome/Perfetto trace_events file. Profiling observes the host clock
  /// only and never alters simulated results.
  bool profile = false;
  std::string prof_path;
  std::string prof_trace_path;
};

struct StageResult {
  std::string name;
  Time completed;            // absolute completion time (first frame)
  std::uint64_t bytes = 0;
};

struct FrameSimResult {
  Time access_time;    // per-frame busy time (mean over frames)
  Time frame_period;   // real-time requirement (1/fps)
  Time window;         // total simulated window used for average power

  double total_power_mw = 0;      // DRAM + interface, averaged over window
  double dram_power_mw = 0;
  double interface_power_mw = 0;

  bool meets_realtime = false;              // access_time <= frame period
  bool meets_realtime_with_margin = false;  // with the processing margin

  std::uint64_t bytes_per_frame = 0;
  double achieved_bandwidth_bytes_per_s = 0;  // during the busy window
  double demand_bandwidth_bytes_per_s = 0;    // Table I load (bytes/s)

  multichannel::SystemStats stats;
  multichannel::SystemPowerReport power;
  std::vector<StageResult> stage_results;  // first simulated frame

  /// kConcurrent mode only: when the paced display/audio traffic finished
  /// (absolute time, last frame) - must stay within the refresh cadence -
  /// and its per-request service latency (display QoS).
  Time paced_last_done = Time::zero();
  Accumulator paced_latency_ns;

  /// Busy time of each simulated frame (GOP structures alternate I/P costs).
  std::vector<Time> per_frame_access;
};

class FrameSimulator {
 public:
  explicit FrameSimulator(FrameSimOptions options = {}) : opt_(options) {}

  [[nodiscard]] FrameSimResult run(const multichannel::SystemConfig& system,
                                   const video::UseCaseParams& usecase) const;

 private:
  FrameSimResult run_impl(const multichannel::SystemConfig& system,
                          const video::UseCaseParams& usecase) const;

  FrameSimOptions opt_;
};

}  // namespace mcm::core
