#include "core/source_runner.hpp"

namespace mcm::core {

SourceRunResult run_stage_sources(
    const multichannel::SystemConfig& system,
    std::vector<std::unique_ptr<load::TrafficSource>> sources, Time window_hint) {
  multichannel::MemorySystem sys(system);
  const std::uint32_t burst = system.device.org.bytes_per_burst();

  SourceRunResult out;
  Time stage_start = Time::zero();
  for (auto& src : sources) {
    src->set_start(stage_start);
    Time last_done = stage_start;
    while (!src->done()) {
      const ctrl::Request r = src->head();
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        src->advance();
        out.bytes += burst;
      } else if (auto c = sys.process_next()) {
        last_done = max(last_done, c->done);
      }
    }
    while (auto c = sys.process_next()) last_done = max(last_done, c->done);
    stage_start = max(stage_start, last_done);
  }

  out.access_time = stage_start;
  out.window = max(stage_start, window_hint);
  sys.finalize(out.window);
  out.stats = sys.stats();
  out.power = sys.power(out.window);
  out.total_power_mw = out.power.total_mw;
  out.dram_power_mw = out.power.dram_mw;
  out.interface_power_mw = out.power.interface_mw;
  return out;
}

}  // namespace mcm::core
