#include "core/frame_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/arena.hpp"
#include "common/log.hpp"
#include "core/sharded_engine.hpp"
#include "load/stream_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace mcm::core {
namespace {

bool is_paced_stage(const load::TrafficSource& src) {
  return src.name() == "DisplayCtrl" || src.name() == "Audio capture";
}

/// Sweeps re-run the same oversized use case for every grid point; warn
/// once per distinct (working set, capacity) pair instead of per run.
void warn_capacity_once(std::uint64_t working_set, std::uint64_t capacity) {
  static std::mutex mutex;
  static std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  {
    std::lock_guard lock(mutex);
    if (!seen.insert({working_set, capacity}).second) return;
  }
  MCM_LOG_WARN("use-case working set (%llu B) exceeds memory capacity (%llu B); "
               "addresses wrap",
               static_cast<unsigned long long>(working_set),
               static_cast<unsigned long long>(capacity));
}

}  // namespace

FrameSimResult FrameSimulator::run(const multichannel::SystemConfig& system,
                                   const video::UseCaseParams& usecase) const {
  if (opt_.profile) obs::prof::set_enabled(true);
  if (!obs::prof::enabled()) return run_impl(system, usecase);

  FrameSimResult result;
  {
    static const obs::prof::PhaseId kRun = obs::prof::phase_id("sim/run");
    obs::prof::ScopedTimer span(kRun);
    result = run_impl(system, usecase);
  }
  if (!opt_.prof_path.empty() || !opt_.prof_trace_path.empty()) {
    const obs::prof::ProfileReport report = obs::prof::collect(/*reset=*/true);
    if (!opt_.prof_path.empty()) {
      std::ofstream out(opt_.prof_path);
      if (out) {
        report.to_json(/*with_spans=*/true).dump(out);
        out << '\n';
      } else {
        MCM_LOG_WARN("cannot open profile file '%s'", opt_.prof_path.c_str());
      }
    }
    if (!opt_.prof_trace_path.empty()) {
      std::ofstream out(opt_.prof_trace_path);
      if (out) {
        report.write_chrome_trace(out);
      } else {
        MCM_LOG_WARN("cannot open trace-events file '%s'",
                     opt_.prof_trace_path.c_str());
      }
    }
  }
  return result;
}

FrameSimResult FrameSimulator::run_impl(
    const multichannel::SystemConfig& system,
    const video::UseCaseParams& usecase) const {
  assert(opt_.frames >= 1);
  const video::UseCaseModel model(usecase);

  multichannel::MemorySystem sys(system);
  // Surfaces start on a whole interleave stripe across all channels so the
  // load is identical (per channel) regardless of channel count.
  const std::uint64_t stripe =
      static_cast<std::uint64_t>(system.interleave_bytes) * system.channels;
  const std::uint64_t align = std::max<std::uint64_t>(64 * 1024, stripe);
  const video::SurfaceLayout layout(model, align);
  if (layout.total_bytes() > sys.capacity_bytes()) {
    warn_capacity_once(layout.total_bytes(), sys.capacity_bytes());
  }

  // Opt-in structured tracing; writers must outlive all channel activity
  // (finalize still issues PRE/REF/PDE commands into them).
  std::ofstream trace_file;
  bool tracing = false;
  if (!opt_.trace_path.empty()) {
    trace_file.open(opt_.trace_path);
    if (trace_file) {
      tracing = true;
    } else {
      MCM_LOG_WARN("cannot open trace file '%s'; tracing disabled",
                   opt_.trace_path.c_str());
    }
  }

  const Time period = model.frame_period();
  FrameSimResult result;
  result.frame_period = period;
  result.demand_bandwidth_bytes_per_s = model.total_mb_per_second() * 1e6;

  Time t = Time::zero();
  Time access_accum = Time::zero();
  std::uint64_t bytes_first_frame = 0;
  const std::uint32_t burst = system.device.org.bytes_per_burst();

  // One request = one device burst; the load granularity follows the device
  // (16 B for the paper's x32 BL4 DDR, 64 B for a wide SDR interface).
  load::LoadOptions load_opt = opt_.load;
  load_opt.burst_bytes = system.device.org.bytes_per_burst();
  load_opt.chunk_bytes = std::max(load_opt.chunk_bytes, load_opt.burst_bytes);

  // GOP structure: I frames carry no encoder reference traffic.
  std::unique_ptr<video::UseCaseModel> intra_model;
  if (opt_.gop_length > 1) {
    video::UseCaseParams intra_params = usecase;
    intra_params.encoder_ref_factor = 0.0;
    intra_model = std::make_unique<video::UseCaseModel>(intra_params);
  }

  const bool sharded =
      opt_.mode == ExecutionMode::kStateMachine && !opt_.legacy_feed;

  // Frame/run-scoped arena storage (tentpole: reset, not freed). The legacy
  // path rebuilds its stage sources in here every frame; the sharded path
  // backs the per-channel trace spools with it. MCM_ARENA=off falls back to
  // the heap. Declared before the spools so they are destroyed first.
  const bool use_arena = common::arena_enabled();
  common::FrameArena frame_arena;

  // Per-channel trace spools for the sharded path (each written by exactly
  // one worker), merged into canonical order after finalize. The legacy
  // streaming sink also lives here so it outlives finalize's trailing
  // PRE/REF/PDE commands.
  std::vector<obs::TraceSpool> spools;
  std::unique_ptr<obs::TraceSink> trace;

  if (sharded) {
    // The memoized per-frame request stream: one enumeration per format,
    // replayed into every grid point that shares it.
    auto& cache = load::StreamCache::instance();
    std::shared_ptr<const load::CachedWorkload> workload;
    std::shared_ptr<const load::CachedWorkload> intra_workload;
    {
      static const obs::prof::PhaseId kLoad =
          obs::prof::phase_id("sim/load_build");
      obs::prof::ScopedTimer span(kLoad);
      workload = cache.get(model, layout, align, load_opt);
      if (intra_model != nullptr) {
        intra_workload = cache.get(*intra_model, layout, align, load_opt);
      }
    }
    std::vector<const load::CachedWorkload*> frames(
        static_cast<std::size_t>(opt_.frames), workload.get());
    if (intra_model != nullptr) {
      for (int f = 0; f < opt_.frames; ++f) {
        if (f % opt_.gop_length == 0) frames[f] = intra_workload.get();
      }
    }
    if (tracing) {
      spools.reserve(sys.channel_count());
      for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
        spools.emplace_back(use_arena ? &frame_arena
                                      : std::pmr::get_default_resource());
      }
      for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
        sys.attach_trace(&spools[c], c);
      }
    }

    static const obs::prof::PhaseId kEngine = obs::prof::phase_id("sim/engine");
    obs::prof::ScopedTimer engine_span(kEngine);
    const auto out = run_sharded_frames(sys, frames, period, opt_.sim_threads,
                                        opt_.sim_chunk);
    engine_span.stop();
    t = out.end_time;
    access_accum = out.access_accum;
    bytes_first_frame = out.bytes_first_frame;
    result.per_frame_access = out.per_frame_access;
    result.stage_results.reserve(out.first_frame_stages.size());
    for (std::size_t i = 0; i < out.first_frame_stages.size(); ++i) {
      result.stage_results.push_back(StageResult{
          out.first_frame_stages[i].first, out.first_frame_completed[i],
          out.first_frame_stages[i].second});
    }
  } else {
    if (tracing) {
      trace = std::make_unique<obs::TraceSink>(trace_file,
                                               opt_.trace_buffer_events);
      sys.attach_trace(trace.get());
    }

    for (int frame = 0; frame < opt_.frames; ++frame) {
      const Time frame_start = t;
      const bool is_intra =
          intra_model != nullptr && frame % opt_.gop_length == 0;
      // Per-frame stage sources: arena-built in the steady state (the reset
      // reclaims last frame's objects wholesale and reuses the blocks), heap
      // fallback under MCM_ARENA=off.
      std::vector<std::unique_ptr<load::TrafficSource>> owned;
      std::vector<load::TrafficSource*> sources;
      if (use_arena) {
        {
          static const obs::prof::PhaseId kArenaReset =
              obs::prof::phase_id("sim/arena_reset");
          obs::prof::ScopedTimer span(kArenaReset);
          frame_arena.reset();
        }
        sources = load::build_stage_sources(is_intra ? *intra_model : model,
                                            layout, load_opt, frame_arena);
      } else {
        owned = load::build_stage_sources(is_intra ? *intra_model : model,
                                          layout, load_opt);
        sources.reserve(owned.size());
        for (auto& s : owned) sources.push_back(s.get());
      }

      // In concurrent mode, split off the paced masters.
      std::vector<load::TrafficSource*> paced;
      if (opt_.mode == ExecutionMode::kConcurrent) {
        for (auto* src : sources) {
          if (!is_paced_stage(*src)) continue;
          src->set_start(frame_start);
          src->set_pacing(period);
          paced.push_back(src);
        }
      }

      Time stage_start = frame_start;
      Time stage_last_done = frame_start;
      std::uint16_t current_stage_id = 0xffff;

      const auto on_complete = [&](const ctrl::Completion& c) {
        if (c.req.source == current_stage_id) {
          stage_last_done = max(stage_last_done, c.done);
        } else {
          result.paced_last_done = max(result.paced_last_done, c.done);
          result.paced_latency_ns.add(c.latency().ns());
        }
      };

      // The paced master with the earliest pending request (merge display and
      // audio by arrival so neither starves behind the other's future-dated
      // requests).
      const auto next_paced = [&]() -> load::TrafficSource* {
        load::TrafficSource* best = nullptr;
        for (auto* p : paced) {
          if (p->done()) continue;
          if (best == nullptr || p->head().arrival < best->head().arrival) best = p;
        }
        return best;
      };

      // Feed every paced request whose arrival the system has reached. The
      // display/audio masters have priority: when their target queue is full,
      // the memory system is driven until a slot frees (a display underflow is
      // a visible artifact, so real arbiters give scan-out the highest
      // priority).
      const auto feed_paced = [&](Time up_to) {
        while (load::TrafficSource* p = next_paced()) {
          if (p->head().arrival > up_to) break;
          if (sys.try_submit(p->head())) {
            p->advance();
            if (frame == 0) bytes_first_frame += burst;
          } else if (auto c = sys.process_next()) {
            on_complete(*c);
          } else {
            break;
          }
        }
      };

      for (auto& src : sources) {
        const bool paced_stage =
            opt_.mode == ExecutionMode::kConcurrent && is_paced_stage(*src);
        if (paced_stage) {
          if (frame == 0) {
            result.stage_results.push_back(StageResult{
                std::string(src->name()) + " (paced)", stage_start, 0});
          }
          continue;  // driven by feed_paced alongside the pipeline
        }
        src->set_start(stage_start);
        stage_last_done = stage_start;
        std::uint64_t stage_bytes = 0;
        current_stage_id = src->done() ? 0xffff : src->head().source;
        static const obs::prof::PhaseId kFeed = obs::prof::phase_id("sim/feed");
        static const obs::prof::PhaseId kDrain =
            obs::prof::phase_id("sim/drain");
        const bool pon = obs::prof::enabled();
        const std::int64_t t_feed0 = pon ? obs::prof::now_ns() : 0;
        while (!src->done()) {
          feed_paced(sys.max_horizon());
          if (sys.try_submit(src->head())) {
            src->advance();
            stage_bytes += burst;
          } else if (auto c = sys.process_next()) {
            on_complete(*c);
          }
        }
        const std::int64_t t_drain0 = pon ? obs::prof::now_ns() : 0;
        // Stage barrier: the next stage consumes this stage's output frame.
        while (auto c = sys.process_next()) on_complete(*c);
        if (pon) {
          const std::int64_t t_end = obs::prof::now_ns();
          obs::prof::tally(kFeed, t_drain0 - t_feed0);
          obs::prof::tally(kDrain, t_end - t_drain0);
        }
        const Time last_done = stage_last_done;
        stage_start = max(stage_start, last_done);
        if (frame == 0) {
          result.stage_results.push_back(
              StageResult{std::string(src->name()), stage_start, stage_bytes});
          bytes_first_frame += stage_bytes;
        }
      }

      access_accum += stage_start - frame_start;
      result.per_frame_access.push_back(stage_start - frame_start);

      // Finish any remaining paced traffic (it trickles into the idle tail),
      // still in arrival order.
      if (!paced.empty()) {
        current_stage_id = 0xffff;  // every completion from here on is paced
        while (load::TrafficSource* p = next_paced()) {
          if (sys.try_submit(p->head())) {
            p->advance();
            if (frame == 0) bytes_first_frame += burst;
          } else if (auto c = sys.process_next()) {
            on_complete(*c);
          } else {
            break;  // defensive: nothing pending yet sources stuck
          }
        }
        while (auto c = sys.process_next()) on_complete(*c);
      }

      // The next frame starts at the sensor cadence, or immediately when the
      // system is running behind real time.
      t = max(frame_start + period, max(stage_start, result.paced_last_done));
    }
  }

  const Time window = max(t, period * opt_.frames);
  {
    static const obs::prof::PhaseId kFinalize =
        obs::prof::phase_id("sim/finalize");
    obs::prof::ScopedTimer span(kFinalize);
    sys.finalize(window);
  }

  if (!spools.empty()) {
    static const obs::prof::PhaseId kMerge =
        obs::prof::phase_id("sim/trace_merge");
    obs::prof::ScopedTimer span(kMerge);
    std::vector<const obs::TraceSpool*> refs;
    refs.reserve(spools.size());
    for (const auto& s : spools) refs.push_back(&s);
    obs::merge_trace_spools(refs, trace_file);
  }

  result.access_time = Time{access_accum.ps() / opt_.frames};
  result.window = window;
  result.bytes_per_frame = bytes_first_frame;
  result.meets_realtime = result.access_time <= period;
  result.meets_realtime_with_margin =
      result.access_time.seconds() <=
      period.seconds() * (1.0 - opt_.processing_margin);
  result.achieved_bandwidth_bytes_per_s =
      result.access_time > Time::zero()
          ? static_cast<double>(bytes_first_frame) / result.access_time.seconds()
          : 0.0;

  result.stats = sys.stats();
  if (opt_.metrics != nullptr) sys.collect_metrics(*opt_.metrics);
  result.power = sys.power(window);
  result.dram_power_mw = result.power.dram_mw;
  result.interface_power_mw = result.power.interface_mw;
  result.total_power_mw = result.power.total_mw;
  return result;
}

}  // namespace mcm::core
