// Chip-to-chip interface power, paper Eq. (1):
//
//   interface_power = nr_of_pins * C * V^2 * f_clk * activity
//
// with 36 toggling pins (data bus + strobes), C = 0.4 pF (the average
// chip-to-chip capacitance over wire bonding, flip chip, and tape automated
// bonding), V = 1.2 V I/O, and activity fixed at 50 %. At 400 MHz this gives
// approximately 4.15 mW per channel ("approximately 5 mW" in the paper).
#pragma once

#include "common/units.hpp"

namespace mcm::channel {

/// Per-bonding-technique chip-to-chip pin capacitance estimates (pF); the
/// paper uses their average (0.4 pF) for the 3D die-stack connection.
inline constexpr double kWireBondCapacitancePf = 0.6;
inline constexpr double kFlipChipCapacitancePf = 0.2;
inline constexpr double kTabCapacitancePf = 0.4;

struct InterfacePowerSpec {
  int pins = 36;                  // data bus + data strobe signals
  double capacitance_pf = 0.4;    // chip-to-chip pin capacitance
  double vio = 1.2;               // I/O voltage (next-generation estimate)
  double activity = 0.5;          // toggle activity factor

  /// Average interface power per channel in mW at clock frequency f.
  [[nodiscard]] double power_mw(Frequency f) const {
    const double watts =
        pins * (capacitance_pf * 1e-12) * vio * vio * f.hz() * activity;
    return watts * 1e3;
  }

  [[nodiscard]] static double average_bond_capacitance_pf() {
    return (kWireBondCapacitancePf + kFlipChipCapacitancePf + kTabCapacitancePf) / 3.0;
  }
};

}  // namespace mcm::channel
