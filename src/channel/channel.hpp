// Channel model: memory controller + DRAM interconnect + bank cluster
// (paper Fig. 2). The interconnect adds a fixed pipeline latency in each
// direction (3-D die stack vias are short); it shifts completion times but
// does not limit throughput. Power is reported as the DRAM energy tally plus
// the Eq. (1) interface power.
#pragma once

#include <cstdint>

#include "channel/interface_power.hpp"
#include "common/units.hpp"
#include "controller/memory_controller.hpp"
#include "dram/energy.hpp"

namespace mcm::channel {

struct InterconnectSpec {
  Time latency = Time::from_ns(1.0);  // one-way MC <-> bank cluster

  /// Minimum clock cycles between request handoffs into one channel's
  /// controller, modelling the on-chip interconnect's per-transaction
  /// overhead (Fig. 2's "On-chip interconnect"). 0 = no front-end limit.
  int request_interval_cycles = 0;
};

struct ChannelPowerReport {
  dram::EnergyBreakdown dram;   // pJ over the window
  double dram_avg_mw = 0;
  double interface_mw = 0;
  double total_mw = 0;
};

class Channel {
 public:
  Channel(const dram::DeviceSpec& spec, Frequency freq, ctrl::AddressMux mux,
          const ctrl::ControllerConfig& cfg, InterconnectSpec interconnect = {},
          InterfacePowerSpec interface = {})
      : controller_(spec, freq, mux, cfg),
        energy_model_(spec.power, controller_.timing()),
        interconnect_(interconnect),
        interface_(interface),
        freq_(freq) {}

  [[nodiscard]] bool can_accept() const { return controller_.can_accept(); }
  [[nodiscard]] bool has_pending() const { return controller_.has_pending(); }
  [[nodiscard]] Time horizon() const { return controller_.horizon(); }

  void enqueue(ctrl::Request r) {
    if (interconnect_.request_interval_cycles > 0) {
      // Front-end serialization: the interconnect hands over at most one
      // request per interval; later arrivals push the acceptance point.
      r.arrival = max(r.arrival, next_accept_);
      next_accept_ =
          r.arrival + freq_.period() * interconnect_.request_interval_cycles;
    }
    controller_.enqueue(r);
  }

  ctrl::Completion process_one() {
    ctrl::Completion c = controller_.process_one();
    c.done += interconnect_.latency * 2;  // request out + data back
    return c;
  }

  void finalize(Time end) { controller_.finalize(end); }

  /// Forward observability tracing into the controller (nullptr detaches).
  void set_trace_sink(obs::TraceWriter* sink, std::uint32_t channel_id) {
    controller_.set_trace_sink(sink, channel_id);
  }
  [[nodiscard]] obs::TraceWriter* trace_writer() const {
    return controller_.trace_writer();
  }

  /// Average power over [0, window].
  [[nodiscard]] ChannelPowerReport power(Time window) const {
    ChannelPowerReport r;
    r.dram = energy_model_.tally(controller_.ledger());
    const double window_ns = window.ns();
    r.dram_avg_mw = window_ns > 0 ? r.dram.total_pj() / window_ns : 0.0;
    r.interface_mw = interface_.power_mw(freq_);
    r.total_mw = r.dram_avg_mw + r.interface_mw;
    return r;
  }

  [[nodiscard]] const ctrl::MemoryController& controller() const { return controller_; }
  [[nodiscard]] const ctrl::ControllerStats& stats() const { return controller_.stats(); }
  [[nodiscard]] const dram::EnergyModel& energy_model() const { return energy_model_; }
  [[nodiscard]] Frequency freq() const { return freq_; }

 private:
  ctrl::MemoryController controller_;
  dram::EnergyModel energy_model_;
  InterconnectSpec interconnect_;
  InterfacePowerSpec interface_;
  Frequency freq_;
  Time next_accept_ = Time::zero();  // front-end handoff cursor
};

}  // namespace mcm::channel
