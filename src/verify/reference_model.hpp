// Golden reference memory-system model for differential verification.
//
// A deliberately simple, single-threaded, no-fast-path reimplementation of
// the production simulator's semantics: Table II channel interleaving, RBC/
// BRC/RCB/RBC-XOR address decode, FR-FCFS / FCFS scheduling over a plain
// vector queue, open/closed/timeout page policies, exact bank and cluster
// timing (tRCD/tRAS/tRC/tRRD/tFAW/tWR/tWTR/tRTP), data-bus turnaround,
// refresh with postpone debt, the power-down and self-refresh governors,
// and the paper's state-machine frame loop. It shares only configuration
// structs (DeviceSpec/DerivedTiming/ControllerConfig/SystemConfig), the
// Request type, and the TraceEvent record with production code — every
// scheduling and timing decision is recomputed here from first principles,
// with none of the production fast paths (row-hit streaming, slab queues,
// channel heaps, sharded feeds, stream memoization).
//
// The model checks its own invariants as it runs (commands on clock edges,
// bank/cluster timing bounds respected, no data-bus overlap, no reordering
// past the starvation bound, monotone horizons) and throws std::logic_error
// on violation. `InjectedBug` deliberately breaks one timing rule so the
// differential harness can prove it catches and shrinks real divergences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "verify/scenario.hpp"

namespace mcm::verify {

/// One channel's observable outcome: controller counters, energy-ledger
/// activity totals, per-bank access counts, and the full command/span event
/// sequence in emission order.
struct RefChannelResult {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t bytes = 0;

  std::uint64_t n_act = 0;
  std::uint64_t n_rd = 0;
  std::uint64_t n_wr = 0;
  std::uint64_t n_ref = 0;
  std::uint64_t n_powerdown_entries = 0;
  std::uint64_t n_selfrefresh_entries = 0;
  std::int64_t t_active_standby_ps = 0;
  std::int64_t t_precharge_standby_ps = 0;
  std::int64_t t_active_powerdown_ps = 0;
  std::int64_t t_powerdown_ps = 0;
  std::int64_t t_selfrefresh_ps = 0;

  std::uint64_t route_count = 0;
  std::vector<std::uint64_t> bank_accesses;
  std::vector<obs::TraceEvent> events;
};

struct RefRunOutput {
  std::int64_t end_time_ps = 0;
  std::int64_t window_ps = 0;
  std::vector<std::int64_t> per_frame_access_ps;
  // First-frame stage bookkeeping (name, bytes, absolute completion).
  std::vector<std::string> stage_names;
  std::vector<std::uint64_t> stage_bytes;
  std::vector<std::int64_t> stage_completed_ps;
  std::vector<RefChannelResult> channels;
};

/// Run the whole scenario (state-machine frame loop + finalize) through the
/// reference model. Throws std::logic_error when a reference-internal
/// invariant is violated and std::invalid_argument on bad scenario names.
[[nodiscard]] RefRunOutput run_reference(const Scenario& scenario);

}  // namespace mcm::verify
