// Delta-debugging shrinker for mismatching scenarios. Given a scenario the
// oracle rejects (production and reference disagree), greedily minimize it
// while keeping the disagreement alive: drop whole frames, drop whole
// stages, delta-debug each stage's request list (halving chunk sizes down
// to single requests), then simplify configuration knobs toward their
// defaults. Runs to a fixpoint, so the result is 1-minimal with respect to
// these passes: removing any single request or reverting any single
// simplification makes the mismatch disappear.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "verify/scenario.hpp"

namespace mcm::verify {

/// Returns the mismatch description when the scenario still fails, nullopt
/// when the two simulators agree on it.
using Oracle = std::function<std::optional<std::string>(const Scenario&)>;

struct ShrinkResult {
  Scenario scenario;       // the minimized scenario (still mismatching)
  std::string mismatch;    // its mismatch description
  std::uint64_t attempts = 0;  // oracle invocations spent
};

/// Shrink `s` (which must fail the oracle with `mismatch`). `max_attempts`
/// bounds total oracle invocations; the best scenario found so far is
/// returned when the budget runs out.
[[nodiscard]] ShrinkResult shrink_scenario(const Scenario& s,
                                           const std::string& mismatch,
                                           const Oracle& oracle,
                                           std::uint64_t max_attempts = 4000);

}  // namespace mcm::verify
