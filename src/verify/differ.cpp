#include "verify/differ.hpp"

#include <sstream>
#include <stdexcept>

#include "core/sharded_engine.hpp"
#include "dram/energy.hpp"
#include "load/stream_cache.hpp"
#include "multichannel/memory_system.hpp"
#include "obs/prof.hpp"

namespace mcm::verify {
namespace {

/// Frame workloads in the stream-cache shape the engines consume.
std::vector<load::CachedWorkload> build_workloads(const Scenario& s,
                                                  std::uint32_t burst_bytes) {
  std::vector<load::CachedWorkload> out;
  out.reserve(s.frames.size());
  for (const ScenarioFrame& f : s.frames) {
    load::CachedWorkload wl;
    wl.burst_bytes = burst_bytes;
    for (const ScenarioStage& st : f.stages) {
      load::CachedStage cs;
      cs.name = st.name;
      cs.source_id = st.source;
      cs.reqs = st.reqs;
      wl.total_requests += st.reqs.size();
      wl.stages.push_back(std::move(cs));
    }
    out.push_back(std::move(wl));
  }
  return out;
}

std::string describe_event(const obs::TraceEvent& e) {
  std::ostringstream os;
  if (e.kind == obs::TraceEvent::Kind::kCommand) {
    os << "cmd " << to_string(e.cmd) << " at " << e.at.ps() << "ps bank "
       << e.bank << " row " << e.row;
  } else {
    os << "span " << (e.is_write ? "WR" : "RD") << " addr " << e.addr
       << " arrival " << e.arrival.ps() << "ps first_cmd " << e.first_cmd.ps()
       << "ps done " << e.done.ps() << "ps hit " << e.row_hit;
  }
  return os.str();
}

bool events_equal(const obs::TraceEvent& a, const obs::TraceEvent& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == obs::TraceEvent::Kind::kCommand) {
    return a.at == b.at && a.cmd == b.cmd && a.bank == b.bank && a.row == b.row;
  }
  return a.addr == b.addr && a.is_write == b.is_write && a.arrival == b.arrival &&
         a.first_cmd == b.first_cmd && a.done == b.done && a.row_hit == b.row_hit;
}

template <typename T>
bool report_field(std::ostringstream& os, const char* name, const T& prod,
                  const T& ref) {
  if (prod == ref) return false;
  os << name << ": production " << prod << " vs reference " << ref;
  return true;
}

template <typename T>
bool report_vec(std::ostringstream& os, const char* name,
                const std::vector<T>& prod, const std::vector<T>& ref) {
  if (prod == ref) return false;
  os << name;
  if (prod.size() != ref.size()) {
    os << " size: production " << prod.size() << " vs reference " << ref.size();
    return true;
  }
  for (std::size_t i = 0; i < prod.size(); ++i) {
    if (prod[i] == ref[i]) continue;
    os << "[" << i << "]: production " << prod[i] << " vs reference " << ref[i];
    break;
  }
  return true;
}

}  // namespace

Outcome run_production(const Scenario& s) {
  static const obs::prof::PhaseId kProd =
      obs::prof::phase_id("verify/production");
  obs::prof::ScopedTimer span(kProd);
  const multichannel::SystemConfig cfg = s.system_config();
  multichannel::MemorySystem sys(cfg);

  std::vector<obs::TraceSpool> spools(sys.channel_count());
  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    sys.attach_trace(&spools[c], c);
  }

  const std::vector<load::CachedWorkload> workloads =
      build_workloads(s, cfg.device.org.bytes_per_burst());
  std::vector<const load::CachedWorkload*> frames;
  frames.reserve(workloads.size());
  for (const load::CachedWorkload& wl : workloads) frames.push_back(&wl);

  const Time period{s.period_ps};
  const core::ShardedRunOutput run =
      s.legacy_feed ? core::run_sequential_frames(sys, frames, period)
                    : core::run_sharded_frames(sys, frames, period, s.sim_threads);

  const Time window =
      max(run.end_time, period * static_cast<std::int64_t>(s.frames.size()));
  sys.finalize(window);

  Outcome o;
  o.end_time_ps = run.end_time.ps();
  o.window_ps = window.ps();
  for (const Time t : run.per_frame_access) o.per_frame_access_ps.push_back(t.ps());
  for (std::size_t i = 0; i < run.first_frame_stages.size(); ++i) {
    o.stage_names.push_back(run.first_frame_stages[i].first);
    o.stage_bytes.push_back(run.first_frame_stages[i].second);
    o.stage_completed_ps.push_back(run.first_frame_completed[i].ps());
  }

  o.channels.reserve(sys.channel_count());
  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    const channel::Channel& ch = sys.channel(c);
    const ctrl::ControllerStats& st = ch.stats();
    const dram::EnergyLedger& led = ch.controller().ledger();
    ChannelOutcome co;
    co.reads = st.reads;
    co.writes = st.writes;
    co.row_hits = st.row_hits;
    co.row_misses = st.row_misses;
    co.row_conflicts = st.row_conflicts;
    co.activates = st.activates;
    co.precharges = st.precharges;
    co.refreshes = st.refreshes;
    co.bytes = st.bytes;
    co.n_act = led.n_act;
    co.n_rd = led.n_rd;
    co.n_wr = led.n_wr;
    co.n_ref = led.n_ref;
    co.n_powerdown_entries = led.n_powerdown_entries;
    co.n_selfrefresh_entries = led.n_selfrefresh_entries;
    co.t_active_standby_ps = led.t_active_standby.ps();
    co.t_precharge_standby_ps = led.t_precharge_standby.ps();
    co.t_active_powerdown_ps = led.t_active_powerdown.ps();
    co.t_powerdown_ps = led.t_powerdown.ps();
    co.t_selfrefresh_ps = led.t_selfrefresh.ps();
    co.route_count = sys.route_counts()[c];
    co.bank_accesses = ch.controller().bank_accesses();
    co.events.assign(spools[c].events().begin(), spools[c].events().end());
    co.energy_total_pj = ch.energy_model().tally(led).total_pj();
    o.channels.push_back(std::move(co));
  }
  // Spools must outlive finalize (it emits trailing PRE/REF/PDE events), so
  // events were copied only after finalize above.
  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    sys.attach_trace(nullptr, c);
  }
  return o;
}

Outcome reference_outcome(const Scenario& s, const RefRunOutput& ref) {
  const multichannel::SystemConfig cfg = s.system_config();

  Outcome o;
  o.end_time_ps = ref.end_time_ps;
  o.window_ps = ref.window_ps;
  o.per_frame_access_ps = ref.per_frame_access_ps;
  o.stage_names = ref.stage_names;
  o.stage_bytes = ref.stage_bytes;
  o.stage_completed_ps = ref.stage_completed_ps;
  o.channels.reserve(ref.channels.size());
  for (std::size_t c = 0; c < ref.channels.size(); ++c) {
    const RefChannelResult& rc = ref.channels[c];
    // Heterogeneous systems price each channel with its own class tables.
    const dram::DeviceSpec dev = cfg.channel_device(static_cast<std::uint32_t>(c));
    const dram::EnergyModel energy(
        dev.power, dram::DerivedTiming::derive(dev.timing, cfg.freq));
    ChannelOutcome co;
    co.reads = rc.reads;
    co.writes = rc.writes;
    co.row_hits = rc.row_hits;
    co.row_misses = rc.row_misses;
    co.row_conflicts = rc.row_conflicts;
    co.activates = rc.activates;
    co.precharges = rc.precharges;
    co.refreshes = rc.refreshes;
    co.bytes = rc.bytes;
    co.n_act = rc.n_act;
    co.n_rd = rc.n_rd;
    co.n_wr = rc.n_wr;
    co.n_ref = rc.n_ref;
    co.n_powerdown_entries = rc.n_powerdown_entries;
    co.n_selfrefresh_entries = rc.n_selfrefresh_entries;
    co.t_active_standby_ps = rc.t_active_standby_ps;
    co.t_precharge_standby_ps = rc.t_precharge_standby_ps;
    co.t_active_powerdown_ps = rc.t_active_powerdown_ps;
    co.t_powerdown_ps = rc.t_powerdown_ps;
    co.t_selfrefresh_ps = rc.t_selfrefresh_ps;
    co.route_count = rc.route_count;
    co.bank_accesses = rc.bank_accesses;
    co.events = rc.events;

    dram::EnergyLedger led;
    led.n_act = rc.n_act;
    led.n_rd = rc.n_rd;
    led.n_wr = rc.n_wr;
    led.n_ref = rc.n_ref;
    led.n_powerdown_entries = rc.n_powerdown_entries;
    led.n_selfrefresh_entries = rc.n_selfrefresh_entries;
    led.t_active_standby = Time{rc.t_active_standby_ps};
    led.t_precharge_standby = Time{rc.t_precharge_standby_ps};
    led.t_active_powerdown = Time{rc.t_active_powerdown_ps};
    led.t_powerdown = Time{rc.t_powerdown_ps};
    led.t_selfrefresh = Time{rc.t_selfrefresh_ps};
    co.energy_total_pj = energy.tally(led).total_pj();
    o.channels.push_back(std::move(co));
  }
  return o;
}

std::optional<std::string> compare_outcomes(const Outcome& production,
                                            const Outcome& reference) {
  std::ostringstream os;
  if (report_field(os, "channel count", production.channels.size(),
                   reference.channels.size())) {
    return os.str();
  }

  // Event sequences first: they pinpoint the first diverging command edge,
  // which is where a timing bug actually happens; aggregate counters would
  // only say that something, somewhere, differed.
  for (std::size_t c = 0; c < production.channels.size(); ++c) {
    const auto& pe = production.channels[c].events;
    const auto& re = reference.channels[c].events;
    const std::size_t n = pe.size() < re.size() ? pe.size() : re.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (events_equal(pe[i], re[i])) continue;
      os << "channel " << c << " event " << i << ": production ["
         << describe_event(pe[i]) << "] vs reference [" << describe_event(re[i])
         << "]";
      return os.str();
    }
    if (pe.size() != re.size()) {
      os << "channel " << c << " event count: production " << pe.size()
         << " vs reference " << re.size() << "; first extra event ["
         << describe_event(pe.size() > re.size() ? pe[n] : re[n]) << "] from "
         << (pe.size() > re.size() ? "production" : "reference");
      return os.str();
    }
  }

  for (std::size_t c = 0; c < production.channels.size(); ++c) {
    const ChannelOutcome& p = production.channels[c];
    const ChannelOutcome& r = reference.channels[c];
    os << "channel " << c << " ";
#define MCM_VERIFY_FIELD(f) \
  if (report_field(os, #f, p.f, r.f)) return os.str();
    MCM_VERIFY_FIELD(reads)
    MCM_VERIFY_FIELD(writes)
    MCM_VERIFY_FIELD(row_hits)
    MCM_VERIFY_FIELD(row_misses)
    MCM_VERIFY_FIELD(row_conflicts)
    MCM_VERIFY_FIELD(activates)
    MCM_VERIFY_FIELD(precharges)
    MCM_VERIFY_FIELD(refreshes)
    MCM_VERIFY_FIELD(bytes)
    MCM_VERIFY_FIELD(n_act)
    MCM_VERIFY_FIELD(n_rd)
    MCM_VERIFY_FIELD(n_wr)
    MCM_VERIFY_FIELD(n_ref)
    MCM_VERIFY_FIELD(n_powerdown_entries)
    MCM_VERIFY_FIELD(n_selfrefresh_entries)
    MCM_VERIFY_FIELD(t_active_standby_ps)
    MCM_VERIFY_FIELD(t_precharge_standby_ps)
    MCM_VERIFY_FIELD(t_active_powerdown_ps)
    MCM_VERIFY_FIELD(t_powerdown_ps)
    MCM_VERIFY_FIELD(t_selfrefresh_ps)
    MCM_VERIFY_FIELD(route_count)
    MCM_VERIFY_FIELD(energy_total_pj)
#undef MCM_VERIFY_FIELD
    if (report_vec(os, "bank_accesses", p.bank_accesses, r.bank_accesses)) {
      return os.str();
    }
    os.str("");  // channel prefix unused: everything matched
  }

  if (report_field(os, "end_time_ps", production.end_time_ps,
                   reference.end_time_ps)) {
    return os.str();
  }
  if (report_field(os, "window_ps", production.window_ps, reference.window_ps)) {
    return os.str();
  }
  if (report_vec(os, "per_frame_access_ps", production.per_frame_access_ps,
                 reference.per_frame_access_ps)) {
    return os.str();
  }
  if (report_vec(os, "stage_names", production.stage_names,
                 reference.stage_names)) {
    return os.str();
  }
  if (report_vec(os, "stage_bytes", production.stage_bytes,
                 reference.stage_bytes)) {
    return os.str();
  }
  if (report_vec(os, "stage_completed_ps", production.stage_completed_ps,
                 reference.stage_completed_ps)) {
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> diff_scenario(const Scenario& s) {
  static const obs::prof::PhaseId kRef =
      obs::prof::phase_id("verify/reference");
  static const obs::prof::PhaseId kCompare =
      obs::prof::phase_id("verify/compare");
  const Outcome prod = run_production(s);
  RefRunOutput ref;
  {
    obs::prof::ScopedTimer span(kRef);
    try {
      ref = run_reference(s);
    } catch (const std::logic_error& e) {
      return std::string("reference invariant: ") + e.what();
    }
  }
  obs::prof::ScopedTimer span(kCompare);
  return compare_outcomes(prod, reference_outcome(s, ref));
}

obs::JsonValue outcome_to_json(const Outcome& o) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = obs::JsonValue{std::string("mcm.verify-outcome/v1")};
  doc["end_time_ps"] = obs::JsonValue{o.end_time_ps};
  doc["window_ps"] = obs::JsonValue{o.window_ps};
  obs::JsonValue& frames = doc["per_frame_access_ps"] = obs::JsonValue::array();
  for (const std::int64_t v : o.per_frame_access_ps) frames.push(obs::JsonValue{v});
  obs::JsonValue& stages = doc["stages"] = obs::JsonValue::array();
  for (std::size_t i = 0; i < o.stage_names.size(); ++i) {
    obs::JsonValue st = obs::JsonValue::object();
    st["name"] = obs::JsonValue{o.stage_names[i]};
    st["bytes"] = obs::JsonValue{o.stage_bytes[i]};
    st["completed_ps"] = obs::JsonValue{o.stage_completed_ps[i]};
    stages.push(std::move(st));
  }
  obs::JsonValue& chans = doc["channels"] = obs::JsonValue::array();
  for (const ChannelOutcome& c : o.channels) {
    obs::JsonValue ch = obs::JsonValue::object();
    ch["reads"] = obs::JsonValue{c.reads};
    ch["writes"] = obs::JsonValue{c.writes};
    ch["row_hits"] = obs::JsonValue{c.row_hits};
    ch["row_misses"] = obs::JsonValue{c.row_misses};
    ch["row_conflicts"] = obs::JsonValue{c.row_conflicts};
    ch["activates"] = obs::JsonValue{c.activates};
    ch["precharges"] = obs::JsonValue{c.precharges};
    ch["refreshes"] = obs::JsonValue{c.refreshes};
    ch["bytes"] = obs::JsonValue{c.bytes};
    ch["events"] = obs::JsonValue{static_cast<std::uint64_t>(c.events.size())};
    ch["route_count"] = obs::JsonValue{c.route_count};
    ch["energy_total_pj"] = obs::JsonValue{c.energy_total_pj};
    obs::JsonValue& banks = ch["bank_accesses"] = obs::JsonValue::array();
    for (const std::uint64_t b : c.bank_accesses) banks.push(obs::JsonValue{b});
    chans.push(std::move(ch));
  }
  return doc;
}

}  // namespace mcm::verify
