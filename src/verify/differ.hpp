// Differential runner: executes one Scenario through the production
// simulator (MemorySystem + the channel-sharded or legacy sequential feed)
// and through the golden reference model, reduces both to the same Outcome
// shape, and reports the first observable divergence. Compared surfaces:
// per-channel command/span event sequences (every issue edge, every
// completion time), controller counters, energy-ledger activity totals,
// per-bank access counts, interleaver route counts, frame bookkeeping
// (end time, per-frame access, first-frame stage completions), and the
// tallied DRAM energy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "verify/reference_model.hpp"
#include "verify/scenario.hpp"

namespace mcm::verify {

/// One channel's observable outcome, produced identically from either
/// simulator so comparison is field-by-field.
struct ChannelOutcome {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t bytes = 0;

  std::uint64_t n_act = 0;
  std::uint64_t n_rd = 0;
  std::uint64_t n_wr = 0;
  std::uint64_t n_ref = 0;
  std::uint64_t n_powerdown_entries = 0;
  std::uint64_t n_selfrefresh_entries = 0;
  std::int64_t t_active_standby_ps = 0;
  std::int64_t t_precharge_standby_ps = 0;
  std::int64_t t_active_powerdown_ps = 0;
  std::int64_t t_powerdown_ps = 0;
  std::int64_t t_selfrefresh_ps = 0;

  std::uint64_t route_count = 0;
  std::vector<std::uint64_t> bank_accesses;
  std::vector<obs::TraceEvent> events;
  double energy_total_pj = 0.0;
};

struct Outcome {
  std::int64_t end_time_ps = 0;
  std::int64_t window_ps = 0;
  std::vector<std::int64_t> per_frame_access_ps;
  std::vector<std::string> stage_names;
  std::vector<std::uint64_t> stage_bytes;
  std::vector<std::int64_t> stage_completed_ps;
  std::vector<ChannelOutcome> channels;
};

/// Run the scenario through the production simulator. Throws whatever the
/// production stack throws (bad config, engine assertion).
[[nodiscard]] Outcome run_production(const Scenario& s);

/// Reduce a reference run to the comparable Outcome shape (tallies energy
/// with the production EnergyModel so identical ledgers give identical pJ).
[[nodiscard]] Outcome reference_outcome(const Scenario& s, const RefRunOutput& ref);

/// First divergence between the two outcomes, or nullopt when they agree
/// exactly. The string pinpoints the channel/event index/field.
[[nodiscard]] std::optional<std::string> compare_outcomes(const Outcome& production,
                                                          const Outcome& reference);

/// Run both simulators and compare. A reference-internal invariant failure
/// (std::logic_error) is reported as a mismatch, not propagated.
[[nodiscard]] std::optional<std::string> diff_scenario(const Scenario& s);

/// Report-level export (deterministic field order) for the report-diff
/// check and for debugging dumps.
[[nodiscard]] obs::JsonValue outcome_to_json(const Outcome& o);

}  // namespace mcm::verify
