#include "verify/reference_model.hpp"

#include <stdexcept>

#include "controller/request.hpp"
#include "load/stream_cache.hpp"

namespace mcm::verify {
namespace {

using ctrl::Request;

void check(bool cond, const char* what) {
  if (!cond) throw std::logic_error(std::string("reference invariant violated: ") + what);
}

/// Plain reimplementation of the Table II stripe interleaving.
struct RefRoute {
  std::uint32_t channel = 0;
  std::uint64_t local = 0;
};

RefRoute route_address(std::uint64_t global, std::uint32_t channels,
                       std::uint32_t granularity) {
  const std::uint64_t stripe = global / granularity;
  RefRoute r;
  r.channel = static_cast<std::uint32_t>(stripe % channels);
  r.local = (stripe / channels) * granularity + global % granularity;
  return r;
}

/// One bank's state: open row plus earliest-legal times for each command
/// kind, recomputed here from the datasheet rules rather than shared with
/// the production Bank class.
struct RefBank {
  bool open = false;
  std::uint32_t row = 0;
  Time next_act = Time::zero();
  Time next_pre = Time::zero();
  Time next_cas = Time::zero();
  Time last_use = Time::zero();
};

/// One channel of the reference system: front-end pacing + controller +
/// bank cluster, all in one deliberately straightforward class.
class RefChannel {
 public:
  // Each channel binds its own device class (timing + organization) and the
  // vault-adjusted interconnect; both come from the same SystemConfig
  // helpers the production MemorySystem constructs from, so the per-channel
  // resolution itself is shared data, not duplicated logic.
  RefChannel(const multichannel::SystemConfig& sys, std::uint32_t channel_id,
             InjectedBug bug)
      : d_(dram::DerivedTiming::derive(sys.channel_device(channel_id).timing,
                                       sys.freq)),
        org_(sys.channel_device(channel_id).org),
        cfg_(sys.controller),
        bug_(bug),
        id_(channel_id),
        mux_(sys.mux),
        interconnect_latency_(sys.channel_interconnect(channel_id).latency),
        request_interval_cycles_(
            sys.channel_interconnect(channel_id).request_interval_cycles),
        clk_ps_(d_.clk.ps()),
        banks_(org_.banks),
        last_wr_data_end_(Time{-1'000'000'000}),
        // Refresh-free classes (PCM-like) park the due time at the sentinel.
        next_ref_due_(d_.has_refresh() ? cyc(d_.trefi) : Time::max()) {
    res_.bank_accesses.assign(org_.banks, 0);
    rows_per_bank_ = org_.rows_per_bank();
    bursts_per_row_ = org_.bursts_per_row();
    capacity_bursts_ = org_.capacity_bytes() / org_.bytes_per_burst();
  }

  [[nodiscard]] bool can_accept() const { return queue_.size() < cfg_.queue_depth; }
  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }
  [[nodiscard]] Time horizon() const { return horizon_; }
  [[nodiscard]] RefChannelResult take_result() { return std::move(res_); }

  void enqueue(Request r) {
    check(can_accept(), "enqueue into a full queue");
    if (request_interval_cycles_ > 0) {
      // Front-end serialization: at most one handoff per interval.
      r.arrival = max(r.arrival, next_accept_);
      next_accept_ = r.arrival + Time{clk_ps_ * request_interval_cycles_};
    }
    queue_.push_back(r);
    ++res_.route_count;
  }

  /// Serve one request; returns its completion time including the round
  /// trip over the DRAM interconnect.
  Time process_one() {
    check(has_pending(), "process_one on an empty queue");
    const std::size_t idx = pick_best();
    if (idx == 0) {
      head_skips_ = 0;
    } else if (queue_.front().arrival <= horizon_) {
      ++head_skips_;
      check(head_skips_ <= cfg_.max_skips, "head skipped past the starvation bound");
    }
    const Request r = queue_[idx];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));

    const std::uint32_t bank = bank_of(r.addr);
    const std::uint32_t row = row_of(r.addr);

    // Refresh handling first — unless the idle gap up to the arrival will be
    // covered by self refresh.
    const Time arrival_edge = next_edge(max(r.arrival, Time::zero()));
    if (selfrefresh_eligible(arrival_edge)) {
      flush_refresh_debt();
    } else {
      if (arrival_edge > horizon_ + cyc(d_.trfc)) flush_refresh_debt();
      handle_due_refreshes(max(arrival_edge, horizon_));
    }

    account_idle_until(arrival_edge);
    const Time t = arrival_edge;
    const Time busy_from = horizon_;

    bool row_hit = false;
    Time first_cmd = Time::zero();
    bool have_first_cmd = false;

    RefBank& b = banks_[bank];
    const bool stale = cfg_.page_policy == ctrl::PagePolicy::kTimeout && b.open &&
                       t > b.last_use + cyc(static_cast<int>(cfg_.page_timeout_cycles));

    if (b.open && b.row == row && !stale) {
      row_hit = true;
      ++res_.row_hits;
    } else {
      if (b.open) {
        const Time tp = issue_edge(max(t, earliest_precharge(bank)));
        close_row(tp, bank);
        first_cmd = tp;
        have_first_cmd = true;
        ++res_.row_conflicts;
      } else {
        ++res_.row_misses;
      }
      const Time ta = issue_edge(max(t, earliest_activate(bank)));
      activate(ta, bank, row);
      ++res_.activates;
      ++res_.n_act;
      record(ta, dram::Command::kActivate, bank, row);
      if (!have_first_cmd) {
        first_cmd = ta;
        have_first_cmd = true;
      }
    }

    // Column command with data-bus occupancy and turnaround gaps.
    Time tc = max(t, b.next_cas);
    Time data_end;
    if (r.is_write) {
      Time min_data = bus_free_;
      if (bus_used_ && !last_data_write_) min_data += cyc(1);  // RD -> WR gap
      tc = max(tc, min_data - cyc(d_.cwl));
      tc = issue_edge(tc);
      check(tc >= b.next_cas, "WR before tRCD elapsed");
      check(b.open, "WR to a closed row");
      data_end = tc + cyc(d_.cwl + d_.burst_ck);
      check(data_end - cyc(d_.burst_ck) >= bus_free_, "write data overlaps the bus");
      b.next_pre = max(b.next_pre, data_end + cyc(d_.twr));
      b.last_use = tc;
      record(tc, dram::Command::kWrite, bank);
      last_wr_data_end_ = data_end;
      last_data_write_ = true;
      ++res_.writes;
      ++res_.n_wr;
    } else {
      if (bug_ != InjectedBug::kIgnoreTwtr) {
        tc = max(tc, last_wr_data_end_ + cyc(d_.twtr));  // tWTR
      }
      Time min_data = bus_free_;
      if (bus_used_ && last_data_write_) min_data += cyc(1);  // WR -> RD gap
      tc = max(tc, min_data - cyc(d_.cl));
      tc = issue_edge(tc);
      check(tc >= b.next_cas, "RD before tRCD elapsed");
      check(b.open, "RD from a closed row");
      data_end = tc + cyc(d_.cl + d_.burst_ck);
      check(data_end - cyc(d_.burst_ck) >= bus_free_, "read data overlaps the bus");
      b.next_pre = max(b.next_pre, tc + cyc(d_.trtp));
      b.last_use = tc;
      record(tc, dram::Command::kRead, bank);
      last_data_write_ = false;
      ++res_.reads;
      ++res_.n_rd;
    }
    if (!have_first_cmd) first_cmd = tc;
    bus_free_ = data_end;
    bus_used_ = true;
    res_.bytes += org_.bytes_per_burst();
    ++res_.bank_accesses[bank];
    span(r, first_cmd, data_end, row_hit);

    if (data_end > busy_from) {
      add_residency(dram::PowerState::kActiveStandby, data_end - busy_from);
      set_horizon(data_end);
    }

    if (cfg_.page_policy == ctrl::PagePolicy::kClosed) {
      const Time tp = issue_edge(earliest_precharge(bank));
      close_row(tp, bank);
      if (tp + cyc(1) > horizon_) {
        add_residency(dram::PowerState::kActiveStandby, tp + cyc(1) - horizon_);
        set_horizon(tp + cyc(1));
      }
    }

    return data_end + interconnect_latency_ * 2;
  }

  void finalize(Time end) {
    check(queue_.empty(), "finalize with pending requests");
    for (std::uint32_t bk = 0; bk < org_.banks; ++bk) {
      if (!banks_[bk].open) continue;
      const Time tp = issue_edge(earliest_precharge(bk));
      close_row(tp, bk);
      if (tp + cyc(1) > horizon_) {
        add_residency(dram::PowerState::kActiveStandby, tp + cyc(1) - horizon_);
        set_horizon(tp + cyc(1));
      }
    }
    flush_refresh_debt();
    if (!selfrefresh_eligible(end)) handle_due_refreshes(end);
    account_idle_until(end);
    set_horizon(max(horizon_, end));
  }

 private:
  [[nodiscard]] Time cyc(std::int64_t n) const { return Time{clk_ps_ * n}; }

  [[nodiscard]] Time next_edge(Time t) const {
    const std::int64_t q = (t.ps() + clk_ps_ - 1) / clk_ps_;
    return Time{q * clk_ps_};
  }

  Time issue_edge(Time t) {
    const Time at = next_edge(max(t, cmd_free_));
    check(at.ps() % clk_ps_ == 0, "command off the clock edge");
    cmd_free_ = at + cyc(1);
    return at;
  }

  void set_horizon(Time h) {
    check(h >= horizon_, "horizon moved backwards");
    horizon_ = h;
  }

  // -- address decode (own implementation, mirrors the bit layouts) --------
  [[nodiscard]] std::uint64_t burst_index(std::uint64_t addr) const {
    return (addr / org_.bytes_per_burst()) % capacity_bursts_;
  }
  [[nodiscard]] std::uint32_t bank_of(std::uint64_t addr) const {
    const std::uint64_t burst = burst_index(addr);
    switch (mux_) {
      case ctrl::AddressMux::kRBC:
        return static_cast<std::uint32_t>((burst / bursts_per_row_) % org_.banks);
      case ctrl::AddressMux::kRBCXor: {
        const std::uint64_t rest = burst / bursts_per_row_;
        const auto bank = static_cast<std::uint32_t>(rest % org_.banks);
        const auto row = static_cast<std::uint32_t>(rest / org_.banks);
        return (bank ^ (row & (org_.banks - 1))) % org_.banks;
      }
      case ctrl::AddressMux::kBRC:
        return static_cast<std::uint32_t>(burst / bursts_per_row_ / rows_per_bank_);
      case ctrl::AddressMux::kRCB:
        return static_cast<std::uint32_t>(burst % org_.banks);
    }
    return 0;
  }
  [[nodiscard]] std::uint32_t row_of(std::uint64_t addr) const {
    const std::uint64_t burst = burst_index(addr);
    switch (mux_) {
      case ctrl::AddressMux::kRBC:
      case ctrl::AddressMux::kRBCXor:
        return static_cast<std::uint32_t>(burst / bursts_per_row_ / org_.banks);
      case ctrl::AddressMux::kBRC:
        return static_cast<std::uint32_t>((burst / bursts_per_row_) % rows_per_bank_);
      case ctrl::AddressMux::kRCB:
        return static_cast<std::uint32_t>(burst / org_.banks / bursts_per_row_);
    }
    return 0;
  }

  // -- cluster timing ------------------------------------------------------
  [[nodiscard]] Time earliest_activate(std::uint32_t bank) const {
    Time t = banks_[bank].next_act;
    t = max(t, rrd_free_);
    t = max(t, faw_free_);
    return t;
  }
  [[nodiscard]] Time earliest_precharge(std::uint32_t bank) const {
    return banks_[bank].next_pre;
  }

  void activate(Time t, std::uint32_t bank, std::uint32_t row) {
    RefBank& b = banks_[bank];
    check(!b.open, "ACT on a bank with an open row");
    check(t >= earliest_activate(bank), "ACT before the bank/cluster allows");
    b.open = true;
    b.row = row;
    b.next_cas = t + cyc(d_.trcd);
    b.next_pre = bug_ == InjectedBug::kIgnoreTras ? t : t + cyc(d_.tras);
    b.next_act = t + cyc(d_.trc);
    rrd_free_ = t + cyc(d_.trrd);
    if (d_.tfaw > 0) {
      act_history_[act_head_] = t;
      act_head_ = (act_head_ + 1) % 4;
      const Time oldest = act_history_[act_head_];
      faw_free_ = oldest > Time{-1} ? oldest + cyc(d_.tfaw) : Time::zero();
    }
  }

  void close_row(Time tp, std::uint32_t bank) {
    RefBank& b = banks_[bank];
    check(b.open, "PRE on a precharged bank");
    check(tp >= b.next_pre, "PRE before tRAS/tWR/tRTP elapsed");
    b.open = false;
    b.next_act = max(b.next_act, tp + cyc(d_.trp));
    ++res_.precharges;
    record(tp, dram::Command::kPrecharge, bank);
  }

  [[nodiscard]] bool any_row_open() const {
    for (const RefBank& b : banks_) {
      if (b.open) return true;
    }
    return false;
  }

  // -- scheduling ----------------------------------------------------------
  [[nodiscard]] std::size_t pick_best() const {
    if (cfg_.scheduler == ctrl::SchedulerPolicy::kFcfs || queue_.size() == 1) return 0;
    if (head_skips_ >= cfg_.max_skips) return 0;  // starvation guard

    std::size_t best_ready = queue_.size();  // sentinel: none ready
    int best_rank = -1;
    std::size_t earliest = 0;
    Time earliest_arrival = Time::max();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Request& r = queue_[i];
      if (r.arrival < earliest_arrival) {
        earliest_arrival = r.arrival;
        earliest = i;
      }
      if (r.arrival > horizon_) continue;  // not ready
      const std::uint32_t bank = bank_of(r.addr);
      const bool hit = banks_[bank].open && banks_[bank].row == row_of(r.addr);
      const bool same_dir = bus_used_ && r.is_write == last_data_write_;
      const int rank = (hit ? 2 : 0) + (same_dir ? 1 : 0);
      if (rank > best_rank) {
        best_rank = rank;
        best_ready = i;
        if (rank == 3 && i == 0) break;  // front request already optimal
      }
    }
    return best_ready != queue_.size() ? best_ready : earliest;
  }

  // -- idle, power-down, self refresh, refresh -----------------------------
  [[nodiscard]] bool selfrefresh_eligible(Time until) const {
    if (!d_.has_refresh()) return false;  // no self-refresh state to enter
    if (cfg_.selfrefresh_idle_cycles < 0 || until <= horizon_) return false;
    const Time min_gap = cyc(cfg_.selfrefresh_idle_cycles + d_.tcke + d_.txsr +
                             d_.trp + 2 + static_cast<int>(org_.banks));
    return until - horizon_ >= min_gap;
  }

  Time account_idle_until(Time t) {
    if (t <= horizon_) return horizon_;
    const bool rows_open = any_row_open();
    const auto standby = rows_open ? dram::PowerState::kActiveStandby
                                   : dram::PowerState::kPrechargeStandby;
    const auto pd = rows_open ? dram::PowerState::kActivePowerDown
                              : dram::PowerState::kPowerDown;
    const Time gap = t - horizon_;

    if (selfrefresh_eligible(t)) {
      Time last_pre = Time{-1};
      for (std::uint32_t bk = 0; bk < org_.banks; ++bk) {
        if (!banks_[bk].open) continue;
        const Time tp = issue_edge(max(next_edge(horizon_), earliest_precharge(bk)));
        close_row(tp, bk);
        last_pre = max(last_pre, tp);
      }
      Time sre = next_edge(horizon_ + cyc(cfg_.selfrefresh_idle_cycles));
      if (last_pre > Time{-1}) sre = max(sre, last_pre + cyc(d_.trp));
      sre = max(sre, cmd_free_);
      const Time srx = next_edge(t);
      add_residency(standby, sre - horizon_);
      add_residency(dram::PowerState::kSelfRefresh, srx - sre);
      ++res_.n_selfrefresh_entries;
      record(sre, dram::Command::kSelfRefreshEnter);
      record(srx, dram::Command::kSelfRefreshExit);
      set_horizon(srx + cyc(d_.txsr));
      add_residency(standby, horizon_ - srx);
      cmd_free_ = max(cmd_free_, horizon_);
      next_ref_due_ = max(next_ref_due_, horizon_ + cyc(d_.trefi));
      return horizon_;
    }

    const bool pd_enabled = cfg_.powerdown_idle_cycles >= 0;
    const Time min_gap = cyc(cfg_.powerdown_idle_cycles + d_.tcke + d_.txp + 2);
    if (pd_enabled && gap >= min_gap) {
      const Time pde = next_edge(horizon_ + cyc(cfg_.powerdown_idle_cycles));
      const Time pdx = next_edge(t);
      add_residency(standby, pde - horizon_);
      add_residency(pd, pdx - pde);
      ++res_.n_powerdown_entries;
      record(pde, dram::Command::kPowerDownEnter);
      record(pdx, dram::Command::kPowerDownExit);
      if (bug_ == InjectedBug::kFreePowerdownExit) {
        set_horizon(pdx);  // deliberately skips the tXP wake penalty
      } else {
        set_horizon(pdx + cyc(d_.txp));
      }
      add_residency(standby, horizon_ - pdx);
      cmd_free_ = max(cmd_free_, horizon_);
    } else {
      add_residency(standby, gap);
      set_horizon(t);
      cmd_free_ = max(cmd_free_, next_edge(horizon_));
    }
    return horizon_;
  }

  void perform_refresh(Time not_before) {
    account_idle_until(max(horizon_, not_before));

    const Time t = next_edge(max(horizon_, not_before));
    for (std::uint32_t bk = 0; bk < org_.banks; ++bk) {
      if (!banks_[bk].open) continue;
      const Time tp = issue_edge(max(t, earliest_precharge(bk)));
      close_row(tp, bk);
    }
    Time earliest = Time::zero();
    for (const RefBank& b : banks_) earliest = max(earliest, b.next_act);
    const Time tr = issue_edge(earliest);
    check(!any_row_open(), "REF with a row open");
    check(tr >= earliest, "REF before all banks are ready");
    for (RefBank& b : banks_) b.next_act = tr + cyc(d_.trfc);
    record(tr, dram::Command::kRefresh);
    ++res_.refreshes;
    ++res_.n_ref;

    const Time ref_end = tr + cyc(d_.trfc);
    add_residency(dram::PowerState::kPrechargeStandby, ref_end - max(horizon_, tr));
    if (tr > horizon_) {
      add_residency(any_row_open() ? dram::PowerState::kActiveStandby
                                   : dram::PowerState::kPrechargeStandby,
                    tr - horizon_);
    }
    set_horizon(max(horizon_, ref_end));
    cmd_free_ = max(cmd_free_, ref_end);
  }

  void handle_due_refreshes(Time now) {
    while (next_ref_due_ <= now) {
      if (has_pending() && ref_debt_ < cfg_.refresh_postpone_max) {
        ++ref_debt_;
      } else {
        perform_refresh(next_ref_due_);
      }
      next_ref_due_ += cyc(d_.trefi);
    }
  }

  void flush_refresh_debt() {
    while (ref_debt_ > 0) {
      perform_refresh(horizon_);
      --ref_debt_;
    }
  }

  // -- bookkeeping ---------------------------------------------------------
  void add_residency(dram::PowerState state, Time dt) {
    check(dt >= Time::zero(), "negative residency interval");
    switch (state) {
      case dram::PowerState::kActiveStandby: res_.t_active_standby_ps += dt.ps(); break;
      case dram::PowerState::kPrechargeStandby: res_.t_precharge_standby_ps += dt.ps(); break;
      case dram::PowerState::kActivePowerDown: res_.t_active_powerdown_ps += dt.ps(); break;
      case dram::PowerState::kPowerDown: res_.t_powerdown_ps += dt.ps(); break;
      case dram::PowerState::kSelfRefresh: res_.t_selfrefresh_ps += dt.ps(); break;
    }
  }

  void record(Time at, dram::Command c, std::uint32_t bank = 0, std::uint32_t row = 0) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kCommand;
    e.channel = id_;
    e.at = at;
    e.cmd = c;
    e.bank = bank;
    e.row = row;
    res_.events.push_back(e);
  }

  void span(const Request& r, Time first_cmd, Time data_end, bool row_hit) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kSpan;
    e.channel = id_;
    e.addr = r.addr;
    e.is_write = r.is_write;
    e.arrival = r.arrival;
    e.first_cmd = first_cmd;
    e.done = data_end;
    e.row_hit = row_hit;
    res_.events.push_back(e);
  }

  dram::DerivedTiming d_;
  dram::OrgSpec org_;
  ctrl::ControllerConfig cfg_;
  InjectedBug bug_;
  std::uint32_t id_;
  ctrl::AddressMux mux_;
  Time interconnect_latency_;
  int request_interval_cycles_;
  std::int64_t clk_ps_;

  std::uint64_t rows_per_bank_ = 0;
  std::uint32_t bursts_per_row_ = 0;
  std::uint64_t capacity_bursts_ = 0;

  std::vector<RefBank> banks_;
  Time rrd_free_ = Time::zero();
  Time faw_free_ = Time::zero();
  Time act_history_[4] = {Time{-1}, Time{-1}, Time{-1}, Time{-1}};
  int act_head_ = 0;

  std::vector<Request> queue_;
  std::uint32_t head_skips_ = 0;

  Time cmd_free_ = Time::zero();
  Time bus_free_ = Time::zero();
  bool bus_used_ = false;
  bool last_data_write_ = false;
  Time last_wr_data_end_;
  Time next_ref_due_;
  std::uint32_t ref_debt_ = 0;
  Time horizon_ = Time::zero();
  Time next_accept_ = Time::zero();

  RefChannelResult res_;
};

}  // namespace

RefRunOutput run_reference(const Scenario& scenario) {
  const multichannel::SystemConfig sys = scenario.system_config();
  if (sys.interleave_bytes < sys.device.org.bytes_per_burst()) {
    throw std::invalid_argument("interleave below the DRAM burst size");
  }
  const std::uint32_t burst = sys.device.org.bytes_per_burst();

  std::vector<RefChannel> channels;
  channels.reserve(sys.channels);
  for (std::uint32_t c = 0; c < sys.channels; ++c) {
    channels.emplace_back(sys, c, scenario.inject);
  }

  // Serve one request on the most-behind pending channel (ties to the
  // lowest index), exactly the production engine's ordering rule.
  const auto process_next = [&]() -> Time {
    std::uint32_t best = sys.channels;
    for (std::uint32_t c = 0; c < sys.channels; ++c) {
      if (!channels[c].has_pending()) continue;
      if (best == sys.channels || channels[c].horizon() < channels[best].horizon()) {
        best = c;
      }
    }
    check(best != sys.channels, "process_next with nothing pending");
    return channels[best].process_one();
  };
  const auto any_pending = [&] {
    for (const RefChannel& c : channels) {
      if (c.has_pending()) return true;
    }
    return false;
  };

  RefRunOutput out;
  const Time period{scenario.period_ps};
  Time t = Time::zero();
  for (std::size_t f = 0; f < scenario.frames.size(); ++f) {
    const Time frame_start = t;
    Time stage_start = frame_start;
    for (const ScenarioStage& stage : scenario.frames[f].stages) {
      Time last_done = stage_start;
      for (const std::uint64_t packed : stage.reqs) {
        const std::uint64_t global = load::CachedStage::addr_of(packed);
        const RefRoute routed =
            route_address(global, sys.channels, sys.interleave_bytes);
        Request r;
        r.addr = routed.local;
        r.is_write = load::CachedStage::is_write_of(packed);
        r.arrival = stage_start;
        r.source = stage.source;
        while (!channels[routed.channel].can_accept()) {
          last_done = max(last_done, process_next());
        }
        channels[routed.channel].enqueue(r);
      }
      // Stage barrier: the next stage consumes this stage's output.
      while (any_pending()) last_done = max(last_done, process_next());
      stage_start = max(stage_start, last_done);
      if (f == 0) {
        out.stage_names.push_back(stage.name);
        out.stage_bytes.push_back(stage.reqs.size() * burst);
        out.stage_completed_ps.push_back(stage_start.ps());
      }
    }
    out.per_frame_access_ps.push_back((stage_start - frame_start).ps());
    t = max(frame_start + period, stage_start);
  }
  out.end_time_ps = t.ps();

  const Time window =
      max(t, period * static_cast<std::int64_t>(scenario.frames.size()));
  out.window_ps = window.ps();
  for (RefChannel& c : channels) c.finalize(window);

  out.channels.reserve(sys.channels);
  for (RefChannel& c : channels) out.channels.push_back(c.take_result());
  return out;
}

}  // namespace mcm::verify
