// A fuzz scenario: one fully-specified differential-verification case —
// system configuration (device, channels, frequency, controller policy
// knobs, engine settings) plus the frame/stage request streams to drive
// through it. Scenarios are pure data: a scenario plus the code revision
// determines both simulators' outputs bit-exactly, which is what makes a
// mismatch replayable. Serialized as `mcm.repro/v1` JSON so shrunken
// repros can be committed and loaded by a ctest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "multichannel/memory_system.hpp"
#include "obs/json.hpp"

namespace mcm::verify {

/// Deliberate timing bugs that can be injected into the *reference* model
/// so the harness can prove it detects (and shrinks) real divergences.
enum class InjectedBug : std::uint8_t {
  kNone,
  kIgnoreTwtr,          // drop the write-to-read turnaround constraint
  kIgnoreTras,          // allow precharge before the tRAS minimum
  kFreePowerdownExit,   // wake from power-down without the tXP penalty
};

[[nodiscard]] std::string_view to_string(InjectedBug b);
[[nodiscard]] std::optional<InjectedBug> parse_injected_bug(std::string_view name);

/// One stage of a frame's state machine: its requests all arrive at the
/// stage start, packed with the stream-cache convention (addr | write<<63).
struct ScenarioStage {
  std::string name;
  std::uint16_t source = 0;
  std::vector<std::uint64_t> reqs;

  friend bool operator==(const ScenarioStage&, const ScenarioStage&) = default;
};

struct ScenarioFrame {
  std::vector<ScenarioStage> stages;

  friend bool operator==(const ScenarioFrame&, const ScenarioFrame&) = default;
};

struct Scenario {
  std::uint64_t seed = 0;  // generation seed (0 for hand-written scenarios)

  // Device + system shape. The device is named so the JSON form stays a
  // small self-contained document (specs are code, not data).
  std::string device = "next_gen_mobile_ddr";
  std::uint32_t channels = 4;
  std::uint32_t freq_mhz = 400;  // integral so the JSON round trip is exact
  std::uint32_t interleave_bytes = 16;
  std::string mux = "RBC";

  // Controller policy knobs (mirrors ctrl::ControllerConfig).
  std::string page_policy = "open";
  std::uint32_t page_timeout_cycles = 512;
  std::string scheduler = "FR-FCFS";
  std::uint32_t queue_depth = 16;
  int powerdown_idle_cycles = 1;
  int selfrefresh_idle_cycles = -1;
  std::uint32_t refresh_postpone_max = 0;
  std::uint32_t max_skips = 128;
  bool stream_row_hits = true;

  // Front end + engine.
  int request_interval_cycles = 0;
  std::int64_t interconnect_latency_ps = 1000;
  std::int64_t period_ps = 33'333'333;  // frame period
  unsigned sim_threads = 1;
  bool legacy_feed = false;

  InjectedBug inject = InjectedBug::kNone;

  // Heterogeneous channel clusters: one device-class name per channel
  // ("mobile_ddr", "fast_edram", "slow_pcm"). Empty = legacy homogeneous
  // system (every channel binds `device`). `vault_group` >= 2 groups that
  // many consecutive channels onto one shared-TSV stacked interface.
  std::vector<std::string> channel_classes;
  std::uint32_t vault_group = 0;

  std::vector<ScenarioFrame> frames;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  /// Production-side system configuration for this scenario. Throws
  /// std::invalid_argument on an unknown device/mux/policy name.
  [[nodiscard]] multichannel::SystemConfig system_config() const;

  [[nodiscard]] std::uint64_t total_requests() const;
};

/// Deterministically generate a random scenario from `seed`: the same seed
/// always yields the same scenario on every platform. With
/// `workload_generators` set, roughly half of the non-empty stages draw
/// their request stream from a sampled workload/ synthetic generator
/// (sequential, strided, pointer-chase, uniform-random) instead of the
/// built-in patterns. With `hetero_classes` set, scenarios additionally draw
/// a per-channel device-class assignment (all-fast, all-slow, mixed, or
/// vault-grouped). Each flag's extra draws happen only when it is set, so
/// (seed, flags) together stay fully deterministic and plain
/// random_scenario(seed) output is unchanged by the flags' existence.
[[nodiscard]] Scenario random_scenario(std::uint64_t seed,
                                       bool workload_generators = false,
                                       bool hetero_classes = false);

/// `mcm.repro/v1` (de)serialization.
[[nodiscard]] obs::JsonValue scenario_to_json(const Scenario& s);
[[nodiscard]] std::optional<Scenario> scenario_from_json(const obs::JsonValue& doc,
                                                         std::string* error = nullptr);
bool save_scenario(const Scenario& s, const std::string& path);
[[nodiscard]] std::optional<Scenario> load_scenario(const std::string& path,
                                                    std::string* error = nullptr);

}  // namespace mcm::verify
