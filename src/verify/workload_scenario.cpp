#include "verify/workload_scenario.hpp"

#include "workload/workload.hpp"

namespace mcm::verify {

Scenario scenario_from_workload(const workload::WorkloadSpec& spec) {
  const workload::CompiledWorkload compiled = workload::compile_workload(spec);

  Scenario s;
  s.device = spec.device;
  s.channels = spec.channels;
  s.freq_mhz = spec.freq_mhz;
  s.interleave_bytes = spec.interleave_bytes;
  s.period_ps = spec.period_ps;
  s.sim_threads = spec.sim_threads == 0 ? 1 : spec.sim_threads;
  s.legacy_feed = spec.legacy_feed;

  ScenarioFrame frame;
  for (const auto& stage : compiled.frame->stages) {
    ScenarioStage st;
    st.name = stage.name;
    st.source = stage.source_id;
    st.reqs = stage.reqs;
    frame.stages.push_back(std::move(st));
  }
  s.frames.assign(static_cast<std::size_t>(spec.frames), frame);
  return s;
}

}  // namespace mcm::verify
