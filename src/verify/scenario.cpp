#include "verify/scenario.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "load/stream_cache.hpp"
#include "workload/generators.hpp"

namespace mcm::verify {

namespace {

dram::DeviceSpec device_by_name(const std::string& name) {
  if (name == "next_gen_mobile_ddr") return dram::DeviceSpec::next_gen_mobile_ddr();
  if (name == "mobile_ddr_2008") return dram::DeviceSpec::mobile_ddr_2008();
  if (name == "eight_bank_future") return dram::DeviceSpec::eight_bank_future();
  if (name == "wide_io_like") return dram::DeviceSpec::wide_io_like();
  throw std::invalid_argument("unknown device spec: " + name);
}

ctrl::AddressMux mux_by_name(const std::string& name) {
  if (name == "RBC") return ctrl::AddressMux::kRBC;
  if (name == "BRC") return ctrl::AddressMux::kBRC;
  if (name == "RCB") return ctrl::AddressMux::kRCB;
  if (name == "RBC-XOR") return ctrl::AddressMux::kRBCXor;
  throw std::invalid_argument("unknown address mux: " + name);
}

ctrl::PagePolicy page_policy_by_name(const std::string& name) {
  if (name == "open") return ctrl::PagePolicy::kOpen;
  if (name == "closed") return ctrl::PagePolicy::kClosed;
  if (name == "timeout") return ctrl::PagePolicy::kTimeout;
  throw std::invalid_argument("unknown page policy: " + name);
}

ctrl::SchedulerPolicy scheduler_by_name(const std::string& name) {
  if (name == "FCFS") return ctrl::SchedulerPolicy::kFcfs;
  if (name == "FR-FCFS") return ctrl::SchedulerPolicy::kFrFcfs;
  throw std::invalid_argument("unknown scheduler: " + name);
}

}  // namespace

std::string_view to_string(InjectedBug b) {
  switch (b) {
    case InjectedBug::kNone: return "none";
    case InjectedBug::kIgnoreTwtr: return "ignore-twtr";
    case InjectedBug::kIgnoreTras: return "ignore-tras";
    case InjectedBug::kFreePowerdownExit: return "free-powerdown-exit";
  }
  return "?";
}

std::optional<InjectedBug> parse_injected_bug(std::string_view name) {
  for (const auto b : {InjectedBug::kNone, InjectedBug::kIgnoreTwtr,
                       InjectedBug::kIgnoreTras, InjectedBug::kFreePowerdownExit}) {
    if (name == to_string(b)) return b;
  }
  return std::nullopt;
}

multichannel::SystemConfig Scenario::system_config() const {
  multichannel::SystemConfig cfg;
  cfg.device = device_by_name(device);
  cfg.freq = Frequency(static_cast<double>(freq_mhz));
  cfg.channels = channels;
  cfg.interleave_bytes = interleave_bytes;
  cfg.mux = mux_by_name(mux);
  cfg.controller.page_policy = page_policy_by_name(page_policy);
  cfg.controller.page_timeout_cycles = page_timeout_cycles;
  cfg.controller.scheduler = scheduler_by_name(scheduler);
  cfg.controller.queue_depth = queue_depth;
  cfg.controller.powerdown_idle_cycles = powerdown_idle_cycles;
  cfg.controller.selfrefresh_idle_cycles = selfrefresh_idle_cycles;
  cfg.controller.refresh_postpone_max = refresh_postpone_max;
  cfg.controller.max_skips = max_skips;
  cfg.controller.stream_row_hits = stream_row_hits;
  cfg.interconnect.latency = Time{interconnect_latency_ps};
  cfg.interconnect.request_interval_cycles = request_interval_cycles;
  cfg.channel_classes.reserve(channel_classes.size());
  for (const std::string& name : channel_classes) {
    const auto cls = dram::parse_device_class(name);
    if (!cls.has_value()) {
      throw std::invalid_argument("unknown device class: " + name);
    }
    cfg.channel_classes.push_back(*cls);
  }
  cfg.vault_group = vault_group;
  return cfg;
}

std::uint64_t Scenario::total_requests() const {
  std::uint64_t n = 0;
  for (const auto& f : frames) {
    for (const auto& st : f.stages) n += st.reqs.size();
  }
  return n;
}

namespace {

/// One stage's request stream. Patterns are chosen to stress specific
/// controller machinery: sequential runs (row-hit streaming), row ping-pong
/// (conflicts + tRC), bank sweeps (tRRD/tFAW), random scatter (mixed), and
/// hot-row column hammering (long same-row runs with direction changes).
std::vector<std::uint64_t> random_stream(Rng& rng, std::uint64_t span_bytes,
                                         std::uint32_t burst_bytes,
                                         std::uint64_t row_stride,
                                         std::size_t count) {
  const std::uint64_t bursts = std::max<std::uint64_t>(span_bytes / burst_bytes, 1);
  const auto pick_base = [&] { return rng.next_below(bursts) * burst_bytes; };

  // Direction mode for the whole stage.
  const int dir_mode = static_cast<int>(rng.next_below(5));
  std::uint64_t run = 1 + rng.next_below(8);
  const auto is_write_at = [&](std::size_t i) {
    switch (dir_mode) {
      case 0: return false;                          // all reads
      case 1: return true;                           // all writes
      case 2: return i % 2 == 1;                     // strict alternation
      case 3: return (i / run) % 2 == 1;             // runs of one direction
      default: return rng.next_below(10) < 3;        // 30 % writes
    }
  };

  std::vector<std::uint64_t> out;
  out.reserve(count);
  const int pattern = static_cast<int>(rng.next_below(5));
  switch (pattern) {
    case 0: {  // sequential run
      std::uint64_t a = pick_base();
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(load::CachedStage::pack(a % span_bytes, is_write_at(i)));
        a += burst_bytes;
      }
      break;
    }
    case 1: {  // ping-pong between two rows (same bank under RBC)
      const std::uint64_t a = pick_base();
      const std::uint64_t b = a + row_stride * (1 + rng.next_below(4));
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t base = (i % 2 == 0) ? a : b;
        out.push_back(load::CachedStage::pack(
            (base + (i / 2) * burst_bytes) % span_bytes, is_write_at(i)));
      }
      break;
    }
    case 2: {  // bank sweep: consecutive rows rotate banks under RBC
      const std::uint64_t a = pick_base();
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(load::CachedStage::pack(
            (a + i * row_stride) % span_bytes, is_write_at(i)));
      }
      break;
    }
    case 3: {  // random scatter across the span
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(load::CachedStage::pack(pick_base(), is_write_at(i)));
      }
      break;
    }
    default: {  // hot row: random columns within one row
      const std::uint64_t base = (pick_base() / row_stride) * row_stride;
      const std::uint64_t cols = std::max<std::uint64_t>(row_stride / burst_bytes, 1);
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(load::CachedStage::pack(
            (base + rng.next_below(cols) * burst_bytes) % span_bytes,
            is_write_at(i)));
      }
      break;
    }
  }
  return out;
}

/// One stage's request stream drawn from a sampled workload/ synthetic
/// generator, so the differential oracle exercises exactly the address
/// patterns the workload subsystem can compose.
std::vector<std::uint64_t> generator_stream(Rng& rng, std::uint64_t span_bytes,
                                            std::uint32_t burst_bytes,
                                            std::size_t count) {
  static constexpr const char* kKinds[] = {"sequential", "strided",
                                           "pointer_chase", "uniform_random"};
  workload::GeneratorParams p;
  p.name = "fuzz-gen";
  p.base = 0;
  p.window_bytes = std::max<std::uint64_t>(span_bytes, burst_bytes);
  p.bytes = static_cast<std::uint64_t>(count) * burst_bytes;
  p.burst_bytes = burst_bytes;
  p.stride_bytes = static_cast<std::uint64_t>(burst_bytes) << rng.next_below(8);
  static constexpr double kWrites[] = {0.0, 1.0, 0.3, 0.5};
  p.write_fraction = kWrites[rng.next_below(4)];
  p.seed = rng.next_u64();
  auto gen = workload::make_generator(kKinds[rng.next_below(4)], std::move(p));
  std::vector<std::uint64_t> out;
  out.reserve(count);
  while (!gen->done()) {
    const ctrl::Request r = gen->head();
    out.push_back(load::CachedStage::pack(r.addr % span_bytes, r.is_write));
    gen->advance();
  }
  return out;
}

}  // namespace

Scenario random_scenario(std::uint64_t seed, bool workload_generators,
                         bool hetero_classes) {
  Rng rng(seed);
  Scenario s;
  s.seed = seed;

  // Device + frequency (each device has its own DDR clock range).
  switch (rng.next_below(8)) {
    case 0:
    case 1:
    case 2:
    case 3: {
      s.device = "next_gen_mobile_ddr";
      static constexpr std::uint32_t kFreqs[] = {200, 266, 333, 400, 466, 533};
      s.freq_mhz = kFreqs[rng.next_below(6)];
      break;
    }
    case 4:
    case 5: {
      s.device = "eight_bank_future";  // tFAW-constrained, 8 banks
      static constexpr std::uint32_t kFreqs[] = {200, 333, 400, 533};
      s.freq_mhz = kFreqs[rng.next_below(4)];
      break;
    }
    case 6: {
      s.device = "mobile_ddr_2008";
      static constexpr std::uint32_t kFreqs[] = {133, 166, 200};
      s.freq_mhz = kFreqs[rng.next_below(3)];
      break;
    }
    default: {
      s.device = "wide_io_like";
      static constexpr std::uint32_t kFreqs[] = {133, 200, 266};
      s.freq_mhz = kFreqs[rng.next_below(3)];
      break;
    }
  }
  const dram::DeviceSpec spec = device_by_name(s.device);
  const std::uint32_t burst = spec.org.bytes_per_burst();

  static constexpr std::uint32_t kChannels[] = {1, 2, 4, 8};
  s.channels = kChannels[rng.next_below(4)];
  s.interleave_bytes = burst << rng.next_below(3);  // G, 2G, 4G

  static constexpr const char* kMux[] = {"RBC", "RBC", "RBC", "BRC", "RCB", "RBC-XOR"};
  s.mux = kMux[rng.next_below(6)];

  static constexpr const char* kPage[] = {"open", "open", "closed", "timeout"};
  s.page_policy = kPage[rng.next_below(4)];
  static constexpr std::uint32_t kTimeouts[] = {16, 64, 512};
  s.page_timeout_cycles = kTimeouts[rng.next_below(3)];
  s.scheduler = rng.next_below(10) < 7 ? "FR-FCFS" : "FCFS";
  static constexpr std::uint32_t kDepth[] = {1, 2, 4, 8, 16, 32};
  s.queue_depth = kDepth[rng.next_below(6)];
  static constexpr int kPd[] = {-1, 0, 1, 8};
  s.powerdown_idle_cycles = kPd[rng.next_below(4)];
  if (rng.next_below(10) < 3) {
    s.selfrefresh_idle_cycles = rng.next_below(2) == 0 ? 64 : 256;
  } else {
    s.selfrefresh_idle_cycles = -1;
  }
  static constexpr std::uint32_t kPostpone[] = {0, 0, 4, 8};
  s.refresh_postpone_max = kPostpone[rng.next_below(4)];
  static constexpr std::uint32_t kSkips[] = {0, 1, 4, 128};
  s.max_skips = kSkips[rng.next_below(4)];
  s.stream_row_hits = rng.next_below(2) == 0;

  static constexpr int kRic[] = {0, 0, 0, 1, 4};
  s.request_interval_cycles = kRic[rng.next_below(5)];
  static constexpr std::int64_t kLat[] = {0, 1000, 1000, 5000};
  s.interconnect_latency_ps = kLat[rng.next_below(4)];
  static constexpr std::int64_t kPeriod[] = {2'000'000, 20'000'000, 100'000'000,
                                             1'000'000'000};
  s.period_ps = kPeriod[rng.next_below(4)];
  s.sim_threads = 1 + static_cast<unsigned>(rng.next_below(8));
  s.legacy_feed = rng.next_below(4) == 0;

  // Working set: mostly a few rows/banks (dense reuse), sometimes the whole
  // device (address wrap in the mapper).
  const std::uint64_t row_stride = spec.org.row_bytes;  // next row, same bank (RBC rotates banks)
  const std::uint64_t total =
      static_cast<std::uint64_t>(s.channels) * spec.org.capacity_bytes();
  std::uint64_t span;
  switch (rng.next_below(4)) {
    case 0: span = row_stride * spec.org.banks * 4; break;       // a few rows/bank
    case 1: span = row_stride * spec.org.banks * 64; break;      // working-set scale
    case 2: span = 4 * kMiB; break;
    default: span = total + row_stride; break;                   // wraps capacity
  }

  const int frames = 1 + static_cast<int>(rng.next_below(3));
  std::uint64_t budget = 200 + rng.next_below(1800);  // total request budget
  for (int f = 0; f < frames; ++f) {
    ScenarioFrame frame;
    const int stages = 1 + static_cast<int>(rng.next_below(4));
    for (int st = 0; st < stages; ++st) {
      ScenarioStage stage;
      stage.name = "f" + std::to_string(f) + "s" + std::to_string(st);
      stage.source = static_cast<std::uint16_t>(st);
      if (rng.next_below(10) != 0) {  // 10 % of stages are empty
        const std::size_t count = static_cast<std::size_t>(
            std::min<std::uint64_t>(20 + rng.next_below(400), budget));
        // The extra draw happens only in generator mode, so plain
        // random_scenario(seed) output is unchanged by the flag's existence.
        if (workload_generators && rng.next_below(2) == 0) {
          stage.reqs = generator_stream(rng, span, burst, count);
        } else {
          stage.reqs = random_stream(rng, span, burst, row_stride, count);
        }
        budget -= std::min<std::uint64_t>(count, budget);
      }
      frame.stages.push_back(std::move(stage));
    }
    s.frames.push_back(std::move(frame));
  }

  // Heterogeneous channel classes, drawn after every legacy field so the
  // flag's extra draws cannot perturb the rest of the scenario: with the
  // classes stripped, a hetero scenario equals the plain one bit for bit.
  if (hetero_classes) {
    switch (rng.next_below(6)) {
      case 0:  // homogeneous legacy control case: no classes at all
        break;
      case 1:  // all-fast cluster
        s.channel_classes.assign(s.channels, "fast_edram");
        break;
      case 2:  // all-slow dense cluster
        s.channel_classes.assign(s.channels, "slow_pcm");
        break;
      case 3: {  // vault-grouped: classes + a shared-TSV bundle size
        static constexpr const char* kCls[] = {"mobile_ddr", "fast_edram",
                                               "slow_pcm"};
        for (std::uint32_t c = 0; c < s.channels; ++c) {
          s.channel_classes.push_back(kCls[rng.next_below(3)]);
        }
        s.vault_group = 2u << rng.next_below(2);  // 2 or 4
        break;
      }
      default: {  // mixed assignment, independent interfaces
        static constexpr const char* kCls[] = {"mobile_ddr", "fast_edram",
                                               "slow_pcm"};
        for (std::uint32_t c = 0; c < s.channels; ++c) {
          s.channel_classes.push_back(kCls[rng.next_below(3)]);
        }
        break;
      }
    }
  }
  return s;
}

obs::JsonValue scenario_to_json(const Scenario& s) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "mcm.repro/v1";
  doc["seed"] = std::uint64_t{s.seed};
  doc["device"] = s.device;
  doc["channels"] = s.channels;
  doc["freq_mhz"] = s.freq_mhz;
  doc["interleave_bytes"] = s.interleave_bytes;
  doc["mux"] = s.mux;
  obs::JsonValue& c = doc["controller"];
  c["page_policy"] = s.page_policy;
  c["page_timeout_cycles"] = s.page_timeout_cycles;
  c["scheduler"] = s.scheduler;
  c["queue_depth"] = s.queue_depth;
  c["powerdown_idle_cycles"] = s.powerdown_idle_cycles;
  c["selfrefresh_idle_cycles"] = s.selfrefresh_idle_cycles;
  c["refresh_postpone_max"] = s.refresh_postpone_max;
  c["max_skips"] = s.max_skips;
  c["stream_row_hits"] = s.stream_row_hits;
  doc["request_interval_cycles"] = s.request_interval_cycles;
  doc["interconnect_latency_ps"] = std::int64_t{s.interconnect_latency_ps};
  doc["period_ps"] = std::int64_t{s.period_ps};
  doc["sim_threads"] = s.sim_threads;
  doc["legacy_feed"] = s.legacy_feed;
  doc["inject"] = std::string(to_string(s.inject));
  // Emitted only when non-default so committed legacy repros stay
  // byte-identical.
  if (!s.channel_classes.empty()) {
    obs::JsonValue& classes = doc["channel_classes"];
    classes = obs::JsonValue::array();
    for (const std::string& c : s.channel_classes) classes.push(obs::JsonValue{c});
  }
  if (s.vault_group != 0) doc["vault_group"] = s.vault_group;
  obs::JsonValue& frames = doc["frames"];
  frames = obs::JsonValue::array();
  for (const auto& f : s.frames) {
    obs::JsonValue jf = obs::JsonValue::object();
    obs::JsonValue& stages = jf["stages"];
    stages = obs::JsonValue::array();
    for (const auto& st : f.stages) {
      obs::JsonValue js = obs::JsonValue::object();
      js["name"] = st.name;
      js["source"] = static_cast<std::uint32_t>(st.source);
      obs::JsonValue& reqs = js["reqs"];
      reqs = obs::JsonValue::array();
      for (const std::uint64_t r : st.reqs) reqs.push(obs::JsonValue{r});
      stages.push(std::move(js));
    }
    frames.push(std::move(jf));
  }
  return doc;
}

namespace {

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

std::optional<Scenario> scenario_from_json(const obs::JsonValue& doc,
                                           std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<Scenario> {
    set_error(error, msg);
    return std::nullopt;
  };
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "mcm.repro/v1") {
    return fail("missing or unsupported schema (want mcm.repro/v1)");
  }
  Scenario s;
  if (const auto* v = doc.find("seed")) s.seed = v->as_uint();
  if (const auto* v = doc.find("device")) s.device = v->as_string(s.device);
  if (const auto* v = doc.find("channels")) s.channels = static_cast<std::uint32_t>(v->as_uint(s.channels));
  if (const auto* v = doc.find("freq_mhz")) s.freq_mhz = static_cast<std::uint32_t>(v->as_uint(s.freq_mhz));
  if (const auto* v = doc.find("interleave_bytes")) s.interleave_bytes = static_cast<std::uint32_t>(v->as_uint(s.interleave_bytes));
  if (const auto* v = doc.find("mux")) s.mux = v->as_string(s.mux);
  if (const auto* c = doc.find("controller")) {
    if (const auto* v = c->find("page_policy")) s.page_policy = v->as_string(s.page_policy);
    if (const auto* v = c->find("page_timeout_cycles")) s.page_timeout_cycles = static_cast<std::uint32_t>(v->as_uint(s.page_timeout_cycles));
    if (const auto* v = c->find("scheduler")) s.scheduler = v->as_string(s.scheduler);
    if (const auto* v = c->find("queue_depth")) s.queue_depth = static_cast<std::uint32_t>(v->as_uint(s.queue_depth));
    if (const auto* v = c->find("powerdown_idle_cycles")) s.powerdown_idle_cycles = static_cast<int>(v->as_int(s.powerdown_idle_cycles));
    if (const auto* v = c->find("selfrefresh_idle_cycles")) s.selfrefresh_idle_cycles = static_cast<int>(v->as_int(s.selfrefresh_idle_cycles));
    if (const auto* v = c->find("refresh_postpone_max")) s.refresh_postpone_max = static_cast<std::uint32_t>(v->as_uint(s.refresh_postpone_max));
    if (const auto* v = c->find("max_skips")) s.max_skips = static_cast<std::uint32_t>(v->as_uint(s.max_skips));
    if (const auto* v = c->find("stream_row_hits")) s.stream_row_hits = v->as_bool(s.stream_row_hits);
  }
  if (const auto* v = doc.find("request_interval_cycles")) s.request_interval_cycles = static_cast<int>(v->as_int(s.request_interval_cycles));
  if (const auto* v = doc.find("interconnect_latency_ps")) s.interconnect_latency_ps = v->as_int(s.interconnect_latency_ps);
  if (const auto* v = doc.find("period_ps")) s.period_ps = v->as_int(s.period_ps);
  if (const auto* v = doc.find("sim_threads")) s.sim_threads = static_cast<unsigned>(v->as_uint(s.sim_threads));
  if (const auto* v = doc.find("legacy_feed")) s.legacy_feed = v->as_bool(s.legacy_feed);
  if (const auto* v = doc.find("inject")) {
    const auto bug = parse_injected_bug(v->as_string("none"));
    if (!bug.has_value()) return fail("unknown inject value");
    s.inject = *bug;
  }
  if (const auto* classes = doc.find("channel_classes")) {
    if (!classes->is_array()) return fail("channel_classes must be an array");
    for (std::size_t i = 0; i < classes->size(); ++i) {
      const std::string name = classes->at(i)->as_string();
      if (!dram::parse_device_class(name).has_value()) {
        return fail("unknown device class: " + name);
      }
      s.channel_classes.push_back(name);
    }
  }
  if (const auto* v = doc.find("vault_group")) s.vault_group = static_cast<std::uint32_t>(v->as_uint(s.vault_group));
  const obs::JsonValue* frames = doc.find("frames");
  if (frames == nullptr || !frames->is_array()) return fail("missing frames array");
  for (std::size_t i = 0; i < frames->size(); ++i) {
    const obs::JsonValue* jf = frames->at(i);
    const obs::JsonValue* stages = jf != nullptr ? jf->find("stages") : nullptr;
    if (stages == nullptr || !stages->is_array()) return fail("frame missing stages");
    ScenarioFrame frame;
    for (std::size_t j = 0; j < stages->size(); ++j) {
      const obs::JsonValue* js = stages->at(j);
      if (js == nullptr) return fail("bad stage entry");
      ScenarioStage stage;
      if (const auto* v = js->find("name")) stage.name = v->as_string();
      if (const auto* v = js->find("source")) stage.source = static_cast<std::uint16_t>(v->as_uint());
      if (const auto* reqs = js->find("reqs")) {
        if (!reqs->is_array()) return fail("stage reqs must be an array");
        stage.reqs.reserve(reqs->size());
        for (std::size_t k = 0; k < reqs->size(); ++k) {
          stage.reqs.push_back(reqs->at(k)->as_uint());
        }
      }
      frame.stages.push_back(std::move(stage));
    }
    s.frames.push_back(std::move(frame));
  }
  if (s.frames.empty()) return fail("scenario has no frames");
  return s;
}

bool save_scenario(const Scenario& s, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  scenario_to_json(s).dump(out, 1);
  out << '\n';
  return static_cast<bool>(out);
}

std::optional<Scenario> load_scenario(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = obs::json_parse(buf.str(), error);
  if (!doc.has_value()) return std::nullopt;
  return scenario_from_json(*doc, error);
}

}  // namespace mcm::verify
