// Bridge from the workload subsystem into the differential verifier: a
// compiled `mcm.workload/v1` scenario becomes an `mcm.repro/v1` Scenario
// whose frames replay the composed multi-tenant stream, so diff_scenario can
// pit the production engine against the golden reference model over exactly
// the traffic a workload run would issue. Controller/mux knobs take the
// production defaults - the same ones WorkloadSpec::system_config() uses.
#pragma once

#include "verify/scenario.hpp"
#include "workload/spec.hpp"

namespace mcm::verify {

/// Compile the workload and wrap its composed per-frame stream as a
/// Scenario (one "mixed" stage per frame, `frames` frames). Propagates
/// compile_workload's exceptions (bad partitions, unreadable traces).
[[nodiscard]] Scenario scenario_from_workload(const workload::WorkloadSpec& spec);

}  // namespace mcm::verify
