#include "verify/shrink.hpp"

#include <algorithm>
#include <utility>

namespace mcm::verify {
namespace {

class Shrinker {
 public:
  Shrinker(Scenario best, std::string mismatch, const Oracle& oracle,
           std::uint64_t max_attempts)
      : best_(std::move(best)),
        mismatch_(std::move(mismatch)),
        oracle_(oracle),
        max_attempts_(max_attempts) {}

  ShrinkResult run() {
    bool progressed = true;
    while (progressed && attempts_ < max_attempts_) {
      progressed = false;
      progressed |= drop_frames();
      progressed |= drop_stages();
      progressed |= shrink_requests();
      progressed |= simplify_config();
    }
    return ShrinkResult{std::move(best_), std::move(mismatch_), attempts_};
  }

 private:
  /// Accept `candidate` when the oracle still rejects it.
  bool try_candidate(const Scenario& candidate) {
    if (candidate == best_) return false;
    if (attempts_ >= max_attempts_) return false;
    ++attempts_;
    const std::optional<std::string> m = oracle_(candidate);
    if (!m.has_value()) return false;
    best_ = candidate;
    mismatch_ = *m;
    return true;
  }

  bool drop_frames() {
    bool progressed = false;
    for (std::size_t f = best_.frames.size(); f-- > 0;) {
      if (best_.frames.size() == 1) break;  // scenarios need one frame
      Scenario c = best_;
      c.frames.erase(c.frames.begin() + static_cast<std::ptrdiff_t>(f));
      progressed |= try_candidate(c);
    }
    return progressed;
  }

  bool drop_stages() {
    bool progressed = false;
    for (std::size_t f = 0; f < best_.frames.size(); ++f) {
      for (std::size_t s = best_.frames[f].stages.size(); s-- > 0;) {
        if (best_.frames[f].stages.size() == 1) break;  // frames need one stage
        Scenario c = best_;
        c.frames[f].stages.erase(c.frames[f].stages.begin() +
                                 static_cast<std::ptrdiff_t>(s));
        progressed |= try_candidate(c);
      }
    }
    return progressed;
  }

  /// Classic delta debugging per stage: try removing chunks of size n/2,
  /// n/4, ... 1 until no single request can be removed.
  bool shrink_requests() {
    bool progressed = false;
    for (std::size_t f = 0; f < best_.frames.size(); ++f) {
      for (std::size_t s = 0; s < best_.frames[f].stages.size(); ++s) {
        progressed |= shrink_stage_requests(f, s);
      }
    }
    return progressed;
  }

  bool shrink_stage_requests(std::size_t f, std::size_t s) {
    bool progressed = false;
    std::size_t chunk = best_.frames[f].stages[s].reqs.size() / 2;
    chunk = std::max<std::size_t>(chunk, 1);
    while (attempts_ < max_attempts_) {
      const std::size_t n = best_.frames[f].stages[s].reqs.size();
      if (n == 0) break;
      bool removed_any = false;
      // Walk back-to-front so surviving indices stay valid after a removal.
      for (std::size_t pos = n; pos > 0;) {
        pos = pos > chunk ? pos - chunk : 0;
        if (pos >= best_.frames[f].stages[s].reqs.size()) continue;
        Scenario c = best_;
        auto& reqs = c.frames[f].stages[s].reqs;
        const std::size_t end = std::min(pos + chunk, reqs.size());
        reqs.erase(reqs.begin() + static_cast<std::ptrdiff_t>(pos),
                   reqs.begin() + static_cast<std::ptrdiff_t>(end));
        if (try_candidate(c)) {
          removed_any = true;
          progressed = true;
        }
      }
      if (!removed_any) {
        if (chunk == 1) break;
        chunk = std::max<std::size_t>(chunk / 2, 1);
      }
    }
    return progressed;
  }

  /// Push configuration knobs toward simpler values one at a time; each
  /// mutation is kept only when the mismatch survives it.
  bool simplify_config() {
    bool progressed = false;
    const auto mutate = [&](auto&& fn) {
      Scenario c = best_;
      fn(c);
      progressed |= try_candidate(c);
    };
    mutate([](Scenario& c) { c.sim_threads = 1; });
    mutate([](Scenario& c) { c.legacy_feed = false; });
    // Back to the homogeneous legacy system first: most mismatches are not
    // about device classes at all.
    mutate([](Scenario& c) {
      c.channel_classes.clear();
      c.vault_group = 0;
    });
    mutate([](Scenario& c) { c.vault_group = 0; });
    // channel_classes is per-channel, so any channel-count shrink must keep
    // it sized to match (the config rejects a length mismatch).
    mutate([](Scenario& c) {
      c.channels = 1;
      if (!c.channel_classes.empty()) c.channel_classes.resize(1);
    });
    mutate([](Scenario& c) {
      c.channels = std::max(c.channels / 2, 1u);
      if (!c.channel_classes.empty()) c.channel_classes.resize(c.channels);
    });
    mutate([](Scenario& c) { c.stream_row_hits = false; });
    mutate([](Scenario& c) { c.queue_depth = std::max(c.queue_depth / 2, 1u); });
    mutate([](Scenario& c) { c.scheduler = "FCFS"; });
    mutate([](Scenario& c) { c.page_policy = "open"; });
    mutate([](Scenario& c) { c.selfrefresh_idle_cycles = -1; });
    mutate([](Scenario& c) { c.powerdown_idle_cycles = -1; });
    mutate([](Scenario& c) { c.refresh_postpone_max = 0; });
    mutate([](Scenario& c) { c.request_interval_cycles = 0; });
    mutate([](Scenario& c) { c.interconnect_latency_ps = 0; });
    mutate([](Scenario& c) { c.max_skips = 128; });
    mutate([](Scenario& c) { c.period_ps = std::max<std::int64_t>(c.period_ps / 4, 1); });
    mutate([](Scenario& c) { c.frames.resize(1); });
    return progressed;
  }

  Scenario best_;
  std::string mismatch_;
  const Oracle& oracle_;
  std::uint64_t max_attempts_;
  std::uint64_t attempts_ = 0;
};

}  // namespace

ShrinkResult shrink_scenario(const Scenario& s, const std::string& mismatch,
                             const Oracle& oracle, std::uint64_t max_attempts) {
  return Shrinker(s, mismatch, oracle, max_attempts).run();
}

}  // namespace mcm::verify
