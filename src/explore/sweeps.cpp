// Implements the core sweep API (core/experiments.hpp) on top of the
// exploration engine, so every figure bench and example inherits the
// work-stealing pool, MCM_THREADS sizing, and the deterministic merge
// contract. Lives in mcm_explore (not mcm_core) to keep the dependency
// arrow explore -> core one-way.
#include "core/experiments.hpp"
#include "explore/orchestrator.hpp"

namespace mcm::core {
namespace {

/// Run `spec` through the engine and flatten to the legacy SweepPoint list
/// (expansion order, identical regardless of thread count).
std::vector<SweepPoint> run_spec(const explore::ExperimentSpec& spec,
                                 unsigned threads) {
  explore::OrchestratorOptions opt;
  opt.threads = threads;
  const explore::ExploreRun run = explore::Orchestrator(opt).run(spec);
  std::vector<SweepPoint> points;
  points.reserve(run.results.size());
  for (const auto& r : run.results) {
    SweepPoint p;
    p.freq_mhz = r.point.freq_mhz;
    p.channels = r.point.channels;
    p.level = r.point.level;
    p.result = r.sim;
    points.push_back(std::move(p));
  }
  return points;
}

/// Grid axes shared by both sweeps. The legacy sweep contract iterates
/// channels outermost, so mirror that in the expansion order via the spec's
/// fixed nesting (level, channels, freq) and reorder below when needed.
explore::ExperimentSpec base_spec(const ExperimentConfig& cfg) {
  explore::ExperimentSpec spec;
  spec.base = cfg;
  spec.interleave_bytes = {cfg.base.interleave_bytes};
  spec.address_muxes = {cfg.base.mux};
  spec.page_policies = {cfg.base.controller.page_policy};
  spec.schedulers = {cfg.base.controller.scheduler};
  spec.base_seed = cfg.sim.load.seed;
  return spec;
}

}  // namespace

std::vector<SweepPoint> sweep_frequency(const ExperimentConfig& cfg,
                                        video::H264Level level,
                                        unsigned threads) {
  explore::ExperimentSpec spec = base_spec(cfg);
  spec.levels = {level};
  spec.channels = paper_channel_counts();
  spec.freq_mhz = paper_frequencies();
  // Single level: expansion order (channels, freq) already matches the
  // legacy output order.
  return run_spec(spec, threads);
}

std::vector<SweepPoint> sweep_formats(const ExperimentConfig& cfg,
                                      double freq_mhz, unsigned threads) {
  explore::ExperimentSpec spec = base_spec(cfg);
  spec.freq_mhz = {freq_mhz};
  spec.channels = paper_channel_counts();
  auto points = run_spec(spec, threads);
  // Legacy order is channels-outer / level-inner; the spec expands
  // level-outer. Reorder deterministically rather than change the engine's
  // fixed nesting.
  std::vector<SweepPoint> ordered;
  ordered.reserve(points.size());
  for (const std::uint32_t ch : paper_channel_counts()) {
    for (const video::H264Level level : video::kAllLevels) {
      for (auto& p : points) {
        if (p.channels == ch && p.level == level) {
          ordered.push_back(std::move(p));
          break;
        }
      }
    }
  }
  return ordered;
}

}  // namespace mcm::core
