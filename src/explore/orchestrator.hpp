// Parallel exploration orchestrator: expands an ExperimentSpec, optionally
// pre-screens every point with the closed-form analytic estimator
// (~microseconds/point) to prune clearly-infeasible configurations, then
// runs the surviving points through the transaction-level FrameSimulator on
// the work-stealing thread pool.
//
// Determinism contract: each point's RNG seed derives from its own grid
// coordinates (ExplorePoint::seed), results are merged back in expansion
// order, and per-point runs share no mutable state — so the result vector
// and every export derived from it are bit-identical for 1 thread and N
// threads. Wall-clock and thread-count live only in the RunStats side
// channel, never in the deterministic results.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analytic.hpp"
#include "core/frame_simulator.hpp"
#include "explore/spec.hpp"

namespace mcm::obs {
class MetricsRegistry;
}  // namespace mcm::obs

namespace mcm::explore {

/// Which engine evaluates the (unpruned) points.
enum class Engine : std::uint8_t {
  kSimulator,  // transaction-level FrameSimulator (the default)
  kAnalytic,   // closed-form estimator only (fast, +/-20 %)
};

struct OrchestratorOptions {
  /// Worker threads; 0 = ThreadPool default (MCM_THREADS override, else
  /// hardware_concurrency).
  unsigned threads = 0;

  Engine engine = Engine::kSimulator;

  /// Run the analytic estimator over every point first and skip full
  /// simulation for points whose analytic access time exceeds
  /// prescreen_slack x frame period — far enough past the deadline that the
  /// +/-20 % model error cannot rescue them. Pruned points keep their
  /// analytic measures and report as infeasible.
  bool prescreen = false;
  double prescreen_slack = 1.25;

  /// When set, the run publishes its counters here: explore/points,
  /// explore/screened, explore/pruned, explore/simulated.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ExploreResult {
  ExplorePoint point;
  bool screened = false;   // analytic phase evaluated this point
  bool pruned = false;     // pre-screen skipped the full simulation
  bool simulated = false;  // `sim` holds a FrameSimulator result
  core::AnalyticResult analytic;  // valid when screened or Engine::kAnalytic
  core::FrameSimResult sim;       // valid when simulated

  /// Headline measures, from the simulator when available, the analytic
  /// model otherwise (pruned / analytic-engine points).
  [[nodiscard]] Time access_time() const {
    return simulated ? sim.access_time : analytic.access_time;
  }
  [[nodiscard]] Time frame_period() const {
    return simulated ? sim.frame_period : analytic.frame_period;
  }
  [[nodiscard]] double total_power_mw() const {
    return simulated ? sim.total_power_mw : analytic.total_power_mw;
  }
  /// Real-time feasibility with a data-processing margin (paper: 15 %).
  [[nodiscard]] bool feasible(double margin = 0.15) const {
    return access_time().seconds() <=
           frame_period().seconds() * (1.0 - margin);
  }
};

/// Non-deterministic run facts (timing, pool size, prune counts); kept apart
/// from `results` so exports can stay thread-count invariant.
struct RunStats {
  unsigned threads = 1;
  double wall_seconds = 0;
  std::size_t points = 0;
  std::size_t screened = 0;
  std::size_t pruned = 0;
  std::size_t simulated = 0;
};

struct ExploreRun {
  std::vector<ExploreResult> results;  // expansion order
  RunStats stats;
};

class Orchestrator {
 public:
  explicit Orchestrator(OrchestratorOptions opt = {}) : opt_(opt) {}

  [[nodiscard]] const OrchestratorOptions& options() const { return opt_; }

  /// Expand and evaluate the spec. Exceptions from worker tasks (e.g. a
  /// config rejected by the simulator) propagate to the caller after the
  /// batch drains.
  [[nodiscard]] ExploreRun run(const ExperimentSpec& spec) const;

  /// Evaluate an explicit point list (any subset/reordering of a grid —
  /// e.g. phase-2 re-simulation of an analytic frontier) against the spec's
  /// base config and seed. Results come back in `points` order.
  [[nodiscard]] ExploreRun run(const ExperimentSpec& spec,
                               std::vector<ExplorePoint> points) const;

 private:
  OrchestratorOptions opt_;
};

}  // namespace mcm::explore
