#include "explore/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.hpp"
#include "core/sharded_engine.hpp"
#include "explore/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace mcm::explore {
namespace {

/// Sim-thread budget so point-level and channel-level parallelism compose
/// without oversubscription: each of the pool's `pool_threads` concurrent
/// points may use at most hardware/pool_threads workers. MCM_SIM_THREADS
/// (or spec.base.sim.sim_threads) asks; the budget caps. The default ask
/// is 1, so exploration behavior is unchanged unless intra-point
/// parallelism is requested explicitly.
unsigned budgeted_sim_threads(unsigned requested, unsigned pool_threads) {
  const unsigned want =
      requested > 0 ? requested : core::sim_threads_from_env();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned budget = std::max(1u, hw / std::max(1u, pool_threads));
  return std::min(want, budget);
}

/// Per-point simulator options: the spec's base options with the
/// deterministic point seed applied and every shared sink (metrics, trace)
/// detached — worker tasks must not share mutable state.
core::FrameSimOptions point_sim_options(const ExperimentSpec& spec,
                                        const ExplorePoint& point,
                                        unsigned pool_threads) {
  core::FrameSimOptions opt = spec.base.sim;
  opt.load.seed = point.seed(spec.base_seed);
  opt.metrics = nullptr;
  opt.trace_path.clear();
  // Concurrent points must not each collect-and-reset the global profiler;
  // profile the whole exploration and collect once at the caller instead.
  opt.prof_path.clear();
  opt.prof_trace_path.clear();
  opt.sim_threads = budgeted_sim_threads(opt.sim_threads, pool_threads);
  return opt;
}

}  // namespace

ExploreRun Orchestrator::run(const ExperimentSpec& spec) const {
  return run(spec, spec.expand());
}

ExploreRun Orchestrator::run(const ExperimentSpec& spec,
                             std::vector<ExplorePoint> points) const {
  static const obs::prof::PhaseId kRun = obs::prof::phase_id("explore/run");
  static const obs::prof::PhaseId kQueueWait =
      obs::prof::phase_id("explore/queue_wait");
  static const obs::prof::PhaseId kAnalytic =
      obs::prof::phase_id("explore/point_analytic");
  static const obs::prof::PhaseId kExecute =
      obs::prof::phase_id("explore/point_execute");
  obs::prof::ScopedTimer run_span(kRun);
  const auto t0 = std::chrono::steady_clock::now();

  ExploreRun run;
  run.results.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    run.results[i].point = points[i];
  }
  run.stats.points = points.size();

  ThreadPool pool(opt_.threads);
  run.stats.threads = pool.size();

  // Phase 1 (optional, and implied by the analytic engine): closed-form
  // estimate for every point. Cheap enough to fan out as one task per point.
  const bool want_screen = opt_.prescreen || opt_.engine == Engine::kAnalytic;
  if (want_screen) {
    std::vector<ThreadPool::Task> tasks;
    tasks.reserve(points.size());
    const bool pon = obs::prof::enabled();
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Queue latency = enqueue-to-start; measured only when profiling so
      // the task captures nothing extra otherwise.
      const std::int64_t enq = pon ? obs::prof::now_ns() : 0;
      tasks.push_back([&spec, &run, i, enq] {
        if (enq != 0) obs::prof::tally(kQueueWait, obs::prof::now_ns() - enq);
        obs::prof::ScopedTimer span(kAnalytic);
        ExploreResult& r = run.results[i];
        r.analytic = core::analytic_estimate(r.point.system(spec.base),
                                             r.point.usecase(spec.base),
                                             spec.base.sim.load);
        r.screened = true;
      });
    }
    pool.run_batch(std::move(tasks));
    run.stats.screened = points.size();
  }

  // Phase 2: transaction-level simulation of the surviving points.
  if (opt_.engine == Engine::kSimulator) {
    std::vector<ThreadPool::Task> tasks;
    tasks.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      ExploreResult& r = run.results[i];
      // The closed-form estimator models one homogeneous device (the base
      // spec), so a heterogeneous point is never pruned on its estimate: a
      // mixed placement can be feasible where the base-device screen says
      // otherwise. Heterogeneous points always get the full simulator.
      if (opt_.prescreen && r.point.classes.empty() &&
          r.analytic.access_time.seconds() >
              r.analytic.frame_period.seconds() * opt_.prescreen_slack) {
        r.pruned = true;
        ++run.stats.pruned;
        continue;
      }
      const unsigned pool_threads = pool.size();
      const std::int64_t enq =
          obs::prof::enabled() ? obs::prof::now_ns() : 0;
      tasks.push_back([&spec, &run, i, pool_threads, enq] {
        if (enq != 0) obs::prof::tally(kQueueWait, obs::prof::now_ns() - enq);
        obs::prof::ScopedTimer span(kExecute);
        ExploreResult& r = run.results[i];
        const core::FrameSimulator sim(
            point_sim_options(spec, r.point, pool_threads));
        r.sim = sim.run(r.point.system(spec.base), r.point.usecase(spec.base));
        r.simulated = true;
      });
    }
    run.stats.simulated = tasks.size();
    pool.run_batch(std::move(tasks));
  }

  run.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (opt_.metrics != nullptr) {
    opt_.metrics->counter("explore/points").inc(run.stats.points);
    opt_.metrics->counter("explore/screened").inc(run.stats.screened);
    opt_.metrics->counter("explore/pruned").inc(run.stats.pruned);
    opt_.metrics->counter("explore/simulated").inc(run.stats.simulated);
  }
  MCM_LOG_INFO(
      "explore: %zu points, %zu screened, %zu pruned, %zu simulated "
      "(%u threads, %.2f s)",
      run.stats.points, run.stats.screened, run.stats.pruned,
      run.stats.simulated, run.stats.threads, run.stats.wall_seconds);
  return run;
}

}  // namespace mcm::explore
