// The work-stealing thread pool moved to src/exec/ so the core simulator can
// share it (channel-sharded execution) without linking the exploration
// engine. This header keeps the historical explore::ThreadPool name alive.
#pragma once

#include "exec/thread_pool.hpp"

namespace mcm::explore {

using exec::ThreadPool;

}  // namespace mcm::explore
