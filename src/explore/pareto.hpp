// Aggregation over exploration results: real-time feasibility against the
// paper's frame deadlines (33.3 ms / 16.7 ms with the 15 % data-processing
// margin), the power-vs-access-time Pareto frontier per H.264 level, and the
// Section V minimum-channel table (the paper's headline conclusion: which
// channel count each recording format requires).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "explore/orchestrator.hpp"

namespace mcm::explore {

/// One candidate for frontier search: minimize both `access_ms` and
/// `power_mw`; infeasible candidates never enter the frontier.
struct ParetoInput {
  double access_ms = 0;
  double power_mw = 0;
  bool feasible = true;
};

/// Indices of the non-dominated feasible candidates. `a` dominates `b` when
/// a.access_ms <= b.access_ms and a.power_mw <= b.power_mw with at least one
/// strict; exact ties dominate neither way, so tied optima all stay on the
/// frontier. The returned indices are sorted ascending (input order), which
/// keeps exports deterministic.
[[nodiscard]] std::vector<std::size_t> pareto_frontier(
    const std::vector<ParetoInput>& candidates);

struct LevelFrontier {
  video::H264Level level = video::H264Level::k31;
  std::vector<std::size_t> frontier;  // indices into run.results
};

/// Per-level frontier over the feasible points of `run` (feasibility at
/// `margin`). Levels appear in kAllLevels order; levels absent from the run
/// are omitted.
[[nodiscard]] std::vector<LevelFrontier> frontiers_by_level(
    const ExploreRun& run, double margin = 0.15);

/// Section V table: the smallest evaluated channel count meeting the
/// level's deadline, with and without the processing margin. When
/// `freq_mhz` > 0 only points at that frequency are considered (the paper
/// fixes 400 MHz); nullopt = no evaluated count suffices.
struct MinChannelEntry {
  video::H264Level level = video::H264Level::k31;
  std::optional<std::uint32_t> min_channels;              // plain deadline
  std::optional<std::uint32_t> min_channels_with_margin;  // 15 % margin
};

[[nodiscard]] std::vector<MinChannelEntry> min_channels_per_level(
    const ExploreRun& run, double freq_mhz = 400.0, double margin = 0.15);

}  // namespace mcm::explore
