#include "explore/pareto.hpp"

#include <algorithm>

namespace mcm::explore {

std::vector<std::size_t> pareto_frontier(
    const std::vector<ParetoInput>& candidates) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ParetoInput& a = candidates[i];
    if (!a.feasible) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (j == i || !candidates[j].feasible) continue;
      const ParetoInput& b = candidates[j];
      const bool no_worse =
          b.access_ms <= a.access_ms && b.power_mw <= a.power_mw;
      const bool strictly_better =
          b.access_ms < a.access_ms || b.power_mw < a.power_mw;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

std::vector<LevelFrontier> frontiers_by_level(const ExploreRun& run,
                                              double margin) {
  std::vector<LevelFrontier> out;
  for (const auto level : video::kAllLevels) {
    // Candidate list for this level, remembering the run index of each.
    std::vector<ParetoInput> candidates;
    std::vector<std::size_t> run_index;
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      const ExploreResult& r = run.results[i];
      if (r.point.level != level) continue;
      candidates.push_back(ParetoInput{.access_ms = r.access_time().ms(),
                                       .power_mw = r.total_power_mw(),
                                       .feasible = r.feasible(margin)});
      run_index.push_back(i);
    }
    if (candidates.empty()) continue;
    LevelFrontier lf;
    lf.level = level;
    for (const std::size_t c : pareto_frontier(candidates)) {
      lf.frontier.push_back(run_index[c]);
    }
    out.push_back(std::move(lf));
  }
  return out;
}

std::vector<MinChannelEntry> min_channels_per_level(const ExploreRun& run,
                                                    double freq_mhz,
                                                    double margin) {
  std::vector<MinChannelEntry> out;
  for (const auto level : video::kAllLevels) {
    MinChannelEntry entry;
    entry.level = level;
    bool seen = false;
    for (const ExploreResult& r : run.results) {
      if (r.point.level != level) continue;
      if (freq_mhz > 0 && r.point.freq_mhz != freq_mhz) continue;
      seen = true;
      if (r.feasible(0.0) &&
          (!entry.min_channels || r.point.channels < *entry.min_channels)) {
        entry.min_channels = r.point.channels;
      }
      if (r.feasible(margin) && (!entry.min_channels_with_margin ||
                                 r.point.channels < *entry.min_channels_with_margin)) {
        entry.min_channels_with_margin = r.point.channels;
      }
    }
    if (seen) out.push_back(entry);
  }
  return out;
}

}  // namespace mcm::explore
