// Exploration exports: fills an obs::RunReport with the mcm.explore/v1
// schema (spec axes, per-point measures, per-level Pareto frontiers, the
// Section V minimum-channel table) and writes the flat per-point CSV.
//
// Everything emitted here derives only from the deterministic result vector,
// so the document is byte-identical for 1-thread and N-thread runs; callers
// wanting timing/thread facts stamp RunStats separately (export_run_stats)
// into a side section.
#pragma once

#include "common/csv.hpp"
#include "explore/pareto.hpp"
#include "obs/run_report.hpp"

namespace mcm::explore {

/// Fill `report` with the deterministic run document (schema mcm.explore/v1):
/// config (spec axes + base), points[], frontiers[], min_channels[].
void export_run(obs::RunReport& report, const ExperimentSpec& spec,
                const ExploreRun& run, double margin = 0.15);

/// Stamp the non-deterministic side facts (thread count, wall seconds,
/// prune counters) as the report's "runtime" member. Kept out of export_run
/// so determinism tests can cover the full deterministic document.
void export_run_stats(obs::RunReport& report, const RunStats& stats);

/// One row per point: coordinates, engine flags, measures, feasibility and
/// frontier membership.
void write_csv(CsvWriter& csv, const ExploreRun& run, double margin = 0.15);

}  // namespace mcm::explore
