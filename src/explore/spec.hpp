// Declarative design-space description: an ExperimentSpec is a grid over the
// paper's architectural axes (channel count, clock frequency, H.264 level,
// page policy, scheduler, interleave granularity, address map) on top of a
// base ExperimentConfig. expand() flattens the grid into a point list in a
// fixed nesting order; each point derives a deterministic RNG seed from its
// own coordinates (not its position), so exploration results are invariant
// to grid reordering, pruning, and thread count.
//
// Specs parse from the repo's "key = value" Config format (docs/
// exploration.md documents every key); list-valued axes are comma-separated:
//
//   grid.channels   = 1, 2, 4, 8
//   grid.freq_mhz   = 200, 266, 333, 400, 466, 533
//   grid.levels     = 3.1, 4.0          # or "all"
//   grid.page_policy = open, timeout
//   screen.enabled  = true
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/experiments.hpp"

namespace mcm::explore {

/// One grid coordinate: the axes the engine varies per run.
struct ExplorePoint {
  double freq_mhz = 400.0;
  std::uint32_t channels = 4;
  video::H264Level level = video::H264Level::k31;
  ctrl::PagePolicy page_policy = ctrl::PagePolicy::kOpen;
  ctrl::SchedulerPolicy scheduler = ctrl::SchedulerPolicy::kFrFcfs;
  std::uint32_t interleave_bytes = 16;
  ctrl::AddressMux mux = ctrl::AddressMux::kRBC;

  /// Heterogeneous channel-class assignment as a compact token: one char per
  /// channel from {d = mobile_ddr, f = fast_edram, s = slow_pcm}; channel i
  /// binds token[i % len], so "fs" means fast/slow alternating at any
  /// channel count. An optional "@G" suffix bundles consecutive groups of G
  /// channels onto a shared-TSV vault interface. Empty = homogeneous legacy
  /// system.
  std::string classes;

  /// Memory-system config for this point: `base` with the axes applied.
  [[nodiscard]] multichannel::SystemConfig system(
      const core::ExperimentConfig& base) const;

  /// Use-case params for this point (level applied).
  [[nodiscard]] video::UseCaseParams usecase(
      const core::ExperimentConfig& base) const;

  /// Deterministic per-point RNG seed: a splitmix64 chain over (base_seed,
  /// point coordinates). Independent of grid position and thread count.
  [[nodiscard]] std::uint64_t seed(std::uint64_t base_seed) const;

  /// "L4.0/4ch/400MHz" (+ non-default policy axes when they differ from the
  /// paper baseline) — stable label for reports and logs.
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool operator==(const ExplorePoint&) const = default;
};

struct ExperimentSpec {
  core::ExperimentConfig base = core::ExperimentConfig::paper_defaults();

  std::vector<double> freq_mhz = {400.0};
  std::vector<std::uint32_t> channels = {1, 2, 4, 8};
  std::vector<video::H264Level> levels{video::kAllLevels.begin(),
                                       video::kAllLevels.end()};
  std::vector<ctrl::PagePolicy> page_policies = {ctrl::PagePolicy::kOpen};
  std::vector<ctrl::SchedulerPolicy> schedulers = {
      ctrl::SchedulerPolicy::kFrFcfs};
  std::vector<std::uint32_t> interleave_bytes = {16};
  std::vector<ctrl::AddressMux> address_muxes = {ctrl::AddressMux::kRBC};

  /// Channel-class tokens (see ExplorePoint::classes); "" = homogeneous.
  std::vector<std::string> classes = {""};

  std::uint64_t base_seed = 1;

  [[nodiscard]] std::size_t size() const;

  /// Flatten to the point list. Nesting order (outer to inner): level,
  /// channels, freq, page policy, scheduler, interleave, mux, classes.
  /// Throws ConfigError when any axis is empty.
  [[nodiscard]] std::vector<ExplorePoint> expand() const;

  /// The paper's evaluation grid: 5 levels x {1,2,4,8} channels x the six
  /// Fig. 3 frequencies (120 points), paper-default policies.
  [[nodiscard]] static ExperimentSpec paper_grid();

  /// Parse from the key-value Config format (unknown "grid."/"base."/
  /// "screen." keys throw ConfigError; see docs/exploration.md).
  [[nodiscard]] static ExperimentSpec from_config(const Config& cfg);
  [[nodiscard]] static ExperimentSpec from_file(const std::string& path);
};

/// Comma-separated list split, trimmed; empty items rejected (ConfigError).
[[nodiscard]] std::vector<std::string> split_list(std::string_view text);

/// Axis-token parsers, shared with the CLI (each throws ConfigError on an
/// unknown token; names match the to_string forms, case-insensitive).
[[nodiscard]] video::H264Level parse_level(std::string_view token);
[[nodiscard]] ctrl::PagePolicy parse_page_policy(std::string_view token);
[[nodiscard]] ctrl::SchedulerPolicy parse_scheduler(std::string_view token);
[[nodiscard]] ctrl::AddressMux parse_address_mux(std::string_view token);

/// Validate a channel-class token ("dfs", "f", "ds@2", ...; "none"/"-" maps
/// to the empty homogeneous token). Throws ConfigError on a bad token;
/// returns the canonical form to store in ExplorePoint::classes.
[[nodiscard]] std::string parse_classes_token(std::string_view token);

}  // namespace mcm::explore
