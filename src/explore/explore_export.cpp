#include "explore/explore_export.hpp"

#include <set>
#include <string>

#include "core/result_export.hpp"

namespace mcm::explore {
namespace {

obs::JsonValue string_array(const std::vector<std::string>& items) {
  obs::JsonValue arr = obs::JsonValue::array();
  for (const auto& s : items) arr.push(s);
  return arr;
}

template <typename T, typename Fn>
obs::JsonValue mapped_array(const std::vector<T>& items, Fn fn) {
  obs::JsonValue arr = obs::JsonValue::array();
  for (const auto& v : items) arr.push(fn(v));
  return arr;
}

void export_point_params(obs::JsonValue& pt, const ExplorePoint& p) {
  pt["level"] = video::level_spec(p.level).name;
  pt["channels"] = p.channels;
  pt["freq_mhz"] = p.freq_mhz;
  pt["page_policy"] = to_string(p.page_policy);
  pt["scheduler"] = to_string(p.scheduler);
  pt["interleave_bytes"] = p.interleave_bytes;
  pt["address_mux"] = to_string(p.mux);
}

void export_analytic(obs::JsonValue& out, const core::AnalyticResult& r) {
  out["access_ms"] = r.access_time.ms();
  out["frame_period_ms"] = r.frame_period.ms();
  out["efficiency"] = r.efficiency;
  out["total_power_mw"] = r.total_power_mw;
  out["dram_power_mw"] = r.dram_power_mw;
  out["interface_power_mw"] = r.interface_power_mw;
  out["meets_realtime"] = r.meets_realtime;
}

}  // namespace

void export_run(obs::RunReport& report, const ExperimentSpec& spec,
                const ExploreRun& run, double margin) {
  report.root()["schema"] = "mcm.explore/v1";

  obs::JsonValue& cfg = report.config();
  core::export_config(cfg, spec.base.base, spec.base.usecase);
  cfg["margin"] = margin;
  cfg["base_seed"] = spec.base_seed;
  cfg["grid/freq_mhz"] = mapped_array(spec.freq_mhz, [](double f) {
    return obs::JsonValue(f);
  });
  cfg["grid/channels"] = mapped_array(spec.channels, [](std::uint32_t c) {
    return obs::JsonValue(c);
  });
  cfg["grid/levels"] = mapped_array(spec.levels, [](video::H264Level l) {
    return obs::JsonValue(video::level_spec(l).name);
  });
  std::vector<std::string> names;
  for (const auto p : spec.page_policies) names.emplace_back(to_string(p));
  cfg["grid/page_policy"] = string_array(names);
  names.clear();
  for (const auto s : spec.schedulers) names.emplace_back(to_string(s));
  cfg["grid/scheduler"] = string_array(names);
  cfg["grid/interleave_bytes"] =
      mapped_array(spec.interleave_bytes,
                   [](std::uint32_t b) { return obs::JsonValue(b); });
  names.clear();
  for (const auto m : spec.address_muxes) names.emplace_back(to_string(m));
  cfg["grid/address_mux"] = string_array(names);

  const auto frontiers = frontiers_by_level(run, margin);
  std::set<std::size_t> on_frontier;
  for (const auto& lf : frontiers) {
    on_frontier.insert(lf.frontier.begin(), lf.frontier.end());
  }

  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const ExploreResult& r = run.results[i];
    obs::JsonValue& pt = report.add_point(r.point.label());
    export_point_params(pt, r.point);
    pt["pruned"] = r.pruned;
    pt["engine"] = r.simulated ? "simulator" : "analytic";
    pt["feasible"] = r.feasible(margin);
    pt["pareto"] = on_frontier.count(i) > 0;
    if (r.screened) export_analytic(pt["analytic"], r.analytic);
    if (r.simulated) {
      core::export_result(pt, r.sim);
    } else {
      // Analytic-only points still carry the headline measures at the top
      // level so consumers can read one place.
      pt["access_ms"] = r.access_time().ms();
      pt["frame_period_ms"] = r.frame_period().ms();
      pt["total_power_mw"] = r.total_power_mw();
    }
  }

  report.root()["frontiers"] = mapped_array(frontiers, [&](const LevelFrontier& lf) {
    obs::JsonValue o = obs::JsonValue::object();
    o["level"] = video::level_spec(lf.level).name;
    o["points"] = mapped_array(lf.frontier, [&](std::size_t idx) {
      return obs::JsonValue(run.results[idx].point.label());
    });
    return o;
  });

  report.root()["min_channels"] = mapped_array(
      min_channels_per_level(run, 0.0, margin), [](const MinChannelEntry& e) {
        obs::JsonValue o = obs::JsonValue::object();
        o["level"] = video::level_spec(e.level).name;
        o["min_channels"] = e.min_channels
                                ? obs::JsonValue(*e.min_channels)
                                : obs::JsonValue();
        o["min_channels_with_margin"] =
            e.min_channels_with_margin
                ? obs::JsonValue(*e.min_channels_with_margin)
                : obs::JsonValue();
        return o;
      });
}

void export_run_stats(obs::RunReport& report, const RunStats& stats) {
  obs::JsonValue& rt = report.root()["runtime"];
  rt["threads"] = stats.threads;
  rt["wall_seconds"] = stats.wall_seconds;
  rt["points"] = stats.points;
  rt["screened"] = stats.screened;
  rt["pruned"] = stats.pruned;
  rt["simulated"] = stats.simulated;
}

void write_csv(CsvWriter& csv, const ExploreRun& run, double margin) {
  const auto frontiers = frontiers_by_level(run, margin);
  std::set<std::size_t> on_frontier;
  for (const auto& lf : frontiers) {
    on_frontier.insert(lf.frontier.begin(), lf.frontier.end());
  }
  csv.row({"level", "channels", "freq_mhz", "page_policy", "scheduler",
           "interleave_bytes", "address_mux", "engine", "pruned", "access_ms",
           "frame_period_ms", "power_mw", "feasible", "pareto"});
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const ExploreResult& r = run.results[i];
    csv.field(video::level_spec(r.point.level).name)
        .field(static_cast<std::uint64_t>(r.point.channels))
        .field(r.point.freq_mhz, 4)
        .field(to_string(r.point.page_policy))
        .field(to_string(r.point.scheduler))
        .field(static_cast<std::uint64_t>(r.point.interleave_bytes))
        .field(to_string(r.point.mux))
        .field(r.simulated ? "simulator" : "analytic")
        .field(std::int64_t{r.pruned})
        .field(r.access_time().ms(), 6)
        .field(r.frame_period().ms(), 6)
        .field(r.total_power_mw(), 6)
        .field(std::int64_t{r.feasible(margin)})
        .field(std::int64_t{on_frontier.count(i) > 0});
    csv.endrow();
  }
}

}  // namespace mcm::explore
