#include "explore/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "video/h264_levels.hpp"

namespace mcm::explore {
namespace {

[[nodiscard]] std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

[[nodiscard]] bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

[[nodiscard]] double parse_double_token(const std::string& token,
                                        const std::string& key) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "': bad number '" + token + "'");
  }
}

[[nodiscard]] std::uint32_t parse_u32_token(const std::string& token,
                                            const std::string& key) {
  const double v = parse_double_token(token, key);
  const auto u = static_cast<std::uint32_t>(v);
  if (v <= 0 || static_cast<double>(u) != v) {
    throw ConfigError("config key '" + key + "': expected positive integer, got '" +
                      token + "'");
  }
  return u;
}

/// splitmix64 step, used to fold point coordinates into the seed chain.
[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + v + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

multichannel::SystemConfig ExplorePoint::system(
    const core::ExperimentConfig& base) const {
  multichannel::SystemConfig sys = base.base;
  sys.freq = Frequency{freq_mhz};
  sys.channels = channels;
  sys.interleave_bytes = interleave_bytes;
  sys.mux = mux;
  sys.controller.page_policy = page_policy;
  sys.controller.scheduler = scheduler;
  if (!classes.empty()) {
    std::string_view body = classes;
    if (const std::size_t at = body.find('@'); at != std::string_view::npos) {
      sys.vault_group = static_cast<std::uint32_t>(
          std::stoul(std::string(body.substr(at + 1))));
      body = body.substr(0, at);
    }
    sys.channel_classes.clear();
    sys.channel_classes.reserve(channels);
    for (std::uint32_t c = 0; c < channels; ++c) {
      switch (body[c % body.size()]) {
        case 'd': sys.channel_classes.push_back(dram::DeviceClass::kMobileDdr); break;
        case 'f': sys.channel_classes.push_back(dram::DeviceClass::kFastEdram); break;
        default: sys.channel_classes.push_back(dram::DeviceClass::kSlowPcm); break;
      }
    }
  }
  return sys;
}

video::UseCaseParams ExplorePoint::usecase(
    const core::ExperimentConfig& base) const {
  video::UseCaseParams uc = base.usecase;
  uc.level = level;
  return uc;
}

std::uint64_t ExplorePoint::seed(std::uint64_t base_seed) const {
  std::uint64_t h = mix(base_seed, 0x6d636d2e6578706cull);  // "mcm.expl"
  std::uint64_t freq_bits = 0;
  static_assert(sizeof freq_bits == sizeof freq_mhz);
  std::memcpy(&freq_bits, &freq_mhz, sizeof freq_bits);
  h = mix(h, freq_bits);
  h = mix(h, channels);
  h = mix(h, static_cast<std::uint64_t>(level));
  h = mix(h, static_cast<std::uint64_t>(page_policy));
  h = mix(h, static_cast<std::uint64_t>(scheduler));
  h = mix(h, interleave_bytes);
  h = mix(h, static_cast<std::uint64_t>(mux));
  // Mixed only for heterogeneous points so every pre-existing homogeneous
  // point keeps its seed (exploration results stay reproducible).
  if (!classes.empty()) {
    std::uint64_t ch = 0xcbf29ce484222325ull;  // FNV-1a over the token
    for (const char c : classes) {
      ch = (ch ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    }
    h = mix(h, ch);
  }
  return h != 0 ? h : 1;  // load sources treat 0 as "unset"
}

std::string ExplorePoint::label() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "L%s/%uch/%.0fMHz",
                std::string(video::level_spec(level).name).c_str(), channels,
                freq_mhz);
  std::string s(buf);
  const ExplorePoint defaults{.freq_mhz = freq_mhz,
                              .channels = channels,
                              .level = level};
  if (page_policy != defaults.page_policy)
    s += std::string("/") + std::string(to_string(page_policy));
  if (scheduler != defaults.scheduler)
    s += std::string("/") + std::string(to_string(scheduler));
  if (interleave_bytes != defaults.interleave_bytes)
    s += "/" + std::to_string(interleave_bytes) + "B";
  if (mux != defaults.mux) s += std::string("/") + std::string(to_string(mux));
  if (!classes.empty()) s += "/cls:" + classes;
  return s;
}

std::size_t ExperimentSpec::size() const {
  return freq_mhz.size() * channels.size() * levels.size() *
         page_policies.size() * schedulers.size() * interleave_bytes.size() *
         address_muxes.size() * classes.size();
}

std::vector<ExplorePoint> ExperimentSpec::expand() const {
  if (size() == 0) {
    throw ConfigError("experiment spec has an empty axis (no points)");
  }
  std::vector<ExplorePoint> points;
  points.reserve(size());
  for (const auto level : levels) {
    for (const auto ch : channels) {
      for (const double f : freq_mhz) {
        for (const auto pp : page_policies) {
          for (const auto sched : schedulers) {
            for (const auto ib : interleave_bytes) {
              for (const auto mux : address_muxes) {
                for (const auto& cls : classes) {
                  points.push_back(ExplorePoint{.freq_mhz = f,
                                                .channels = ch,
                                                .level = level,
                                                .page_policy = pp,
                                                .scheduler = sched,
                                                .interleave_bytes = ib,
                                                .mux = mux,
                                                .classes = cls});
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

ExperimentSpec ExperimentSpec::paper_grid() {
  ExperimentSpec spec;
  spec.freq_mhz = core::paper_frequencies();
  spec.channels = core::paper_channel_counts();
  return spec;
}

std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size() : comma;
    std::string item = trim(text.substr(start, end - start));
    if (item.empty()) {
      throw ConfigError("empty item in list '" + std::string(text) + "'");
    }
    items.push_back(std::move(item));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return items;
}

video::H264Level parse_level(std::string_view token) {
  for (const auto level : video::kAllLevels) {
    if (token == video::level_spec(level).name) return level;
  }
  // Accept "4.0" for the level the spec table names "4".
  if (token == "4.0") return video::H264Level::k40;
  throw ConfigError("unknown H.264 level '" + std::string(token) +
                    "' (expected one of 3.1, 3.2, 4, 4.2, 5.2)");
}

ctrl::PagePolicy parse_page_policy(std::string_view token) {
  for (const auto p : {ctrl::PagePolicy::kOpen, ctrl::PagePolicy::kClosed,
                       ctrl::PagePolicy::kTimeout}) {
    if (iequals(token, to_string(p))) return p;
  }
  throw ConfigError("unknown page policy '" + std::string(token) +
                    "' (expected open|closed|timeout)");
}

ctrl::SchedulerPolicy parse_scheduler(std::string_view token) {
  for (const auto s : {ctrl::SchedulerPolicy::kFcfs, ctrl::SchedulerPolicy::kFrFcfs}) {
    if (iequals(token, to_string(s))) return s;
  }
  if (iequals(token, "frfcfs")) return ctrl::SchedulerPolicy::kFrFcfs;
  throw ConfigError("unknown scheduler '" + std::string(token) +
                    "' (expected FCFS|FR-FCFS)");
}

std::string parse_classes_token(std::string_view token) {
  if (token.empty() || iequals(token, "none") || token == "-") return "";
  std::string_view body = token;
  if (const std::size_t at = token.find('@'); at != std::string_view::npos) {
    body = token.substr(0, at);
    const std::string group(token.substr(at + 1));
    std::uint32_t g = 0;
    try {
      std::size_t pos = 0;
      g = static_cast<std::uint32_t>(std::stoul(group, &pos));
      if (pos != group.size()) g = 0;
    } catch (const std::exception&) {
      g = 0;
    }
    if (g < 2) {
      throw ConfigError("bad vault group in classes token '" +
                        std::string(token) + "' (want @G with G >= 2)");
    }
  }
  if (body.empty()) {
    throw ConfigError("classes token '" + std::string(token) +
                      "' has no class characters");
  }
  for (const char c : body) {
    if (c != 'd' && c != 'f' && c != 's') {
      throw ConfigError("bad class character '" + std::string(1, c) +
                        "' in classes token '" + std::string(token) +
                        "' (expected d=mobile_ddr, f=fast_edram, s=slow_pcm)");
    }
  }
  return std::string(token);
}

ctrl::AddressMux parse_address_mux(std::string_view token) {
  for (const auto m : {ctrl::AddressMux::kRBC, ctrl::AddressMux::kBRC,
                       ctrl::AddressMux::kRCB, ctrl::AddressMux::kRBCXor}) {
    if (iequals(token, to_string(m))) return m;
  }
  throw ConfigError("unknown address mux '" + std::string(token) +
                    "' (expected RBC|BRC|RCB|RBC-XOR)");
}

ExperimentSpec ExperimentSpec::from_config(const Config& cfg) {
  ExperimentSpec spec;
  for (const auto& [key, value] : cfg.entries()) {
    if (key == "grid.freq_mhz") {
      spec.freq_mhz.clear();
      for (const auto& t : split_list(value))
        spec.freq_mhz.push_back(parse_double_token(t, key));
    } else if (key == "grid.channels") {
      spec.channels.clear();
      for (const auto& t : split_list(value))
        spec.channels.push_back(parse_u32_token(t, key));
    } else if (key == "grid.levels") {
      spec.levels.clear();
      if (iequals(trim(value), "all")) {
        spec.levels.assign(video::kAllLevels.begin(), video::kAllLevels.end());
      } else {
        for (const auto& t : split_list(value))
          spec.levels.push_back(parse_level(t));
      }
    } else if (key == "grid.page_policy") {
      spec.page_policies.clear();
      for (const auto& t : split_list(value))
        spec.page_policies.push_back(parse_page_policy(t));
    } else if (key == "grid.scheduler") {
      spec.schedulers.clear();
      for (const auto& t : split_list(value))
        spec.schedulers.push_back(parse_scheduler(t));
    } else if (key == "grid.interleave_bytes") {
      spec.interleave_bytes.clear();
      for (const auto& t : split_list(value))
        spec.interleave_bytes.push_back(parse_u32_token(t, key));
    } else if (key == "grid.address_mux") {
      spec.address_muxes.clear();
      for (const auto& t : split_list(value))
        spec.address_muxes.push_back(parse_address_mux(t));
    } else if (key == "grid.channel_classes") {
      spec.classes.clear();
      for (const auto& t : split_list(value))
        spec.classes.push_back(parse_classes_token(t));
    } else if (key == "base.seed") {
      spec.base_seed = static_cast<std::uint64_t>(cfg.get_int(key, 1));
    } else if (key == "base.frames") {
      spec.base.sim.frames = static_cast<int>(cfg.get_int(key, 1));
    } else if (key == "base.gop_length") {
      spec.base.sim.gop_length = static_cast<int>(cfg.get_int(key, 0));
    } else if (key == "base.processing_margin") {
      spec.base.sim.processing_margin = cfg.get_double(key, 0.15);
    } else if (key == "base.queue_depth") {
      spec.base.base.controller.queue_depth =
          static_cast<std::uint32_t>(cfg.get_int(key, 8));
    } else if (key == "base.powerdown_idle_cycles") {
      spec.base.base.controller.powerdown_idle_cycles =
          static_cast<int>(cfg.get_int(key, 1));
    } else if (key == "base.selfrefresh_idle_cycles") {
      spec.base.base.controller.selfrefresh_idle_cycles =
          static_cast<int>(cfg.get_int(key, -1));
    } else if (key == "base.refresh_postpone_max") {
      spec.base.base.controller.refresh_postpone_max =
          static_cast<std::uint32_t>(cfg.get_int(key, 0));
    } else if (key.rfind("grid.", 0) == 0 || key.rfind("base.", 0) == 0) {
      throw ConfigError("unknown experiment spec key '" + key + "'");
    }
    // Other prefixes (screen.*, threads, report.*) belong to the
    // orchestrator/CLI layers and are ignored here.
  }
  return spec;
}

ExperimentSpec ExperimentSpec::from_file(const std::string& path) {
  return from_config(Config::from_file(path));
}

}  // namespace mcm::explore
