// Reference model of the Cell Broadband Engine's dual-channel XDR DRAM
// interface (paper Section IV, citing Yip et al. [18]): 1.6 GHz clock,
// 25.6 GB/s aggregate bandwidth, ~5 W typical power. The paper compares the
// 8-channel 400 MHz mobile DDR configuration against it: similar bandwidth
// at 4-25 % of the power depending on the encoding format.
#pragma once

namespace mcm::xdr {

struct XdrInterface {
  double clock_ghz = 1.6;
  double bandwidth_gb_per_s = 25.6;  // dual channel
  double typical_power_w = 5.0;

  [[nodiscard]] double typical_power_mw() const { return typical_power_w * 1e3; }

  /// Power of a competing memory subsystem as a fraction of XDR's.
  [[nodiscard]] double power_fraction(double other_mw) const {
    return other_mw / typical_power_mw();
  }
};

}  // namespace mcm::xdr
