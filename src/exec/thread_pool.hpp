// Work-stealing thread pool for design-space exploration: each worker owns a
// deque and pops from its back (LIFO, cache-warm); idle workers steal from
// the front of their peers' deques (FIFO, oldest first) so large batches
// spread even when submission is bursty. Sized from
// std::thread::hardware_concurrency() with an MCM_THREADS environment
// override; a pool of size 1 still runs every task (on its single worker),
// which is what makes orchestrated runs reproducible across machines.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace mcm::exec {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `threads` = 0 picks default_thread_count(). At least one worker is
  /// always started.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task (round-robin across worker deques). Thread-safe.
  void submit(Task task);

  /// Block until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (remaining tasks still ran).
  void wait_idle();

  /// Submit a batch and wait for all of it; convenience over submit+wait.
  void run_batch(std::vector<Task> tasks);

  /// MCM_THREADS when set to a positive integer, otherwise
  /// hardware_concurrency() (minimum 1).
  [[nodiscard]] static unsigned default_thread_count();

  /// Parsed MCM_THREADS value; nullopt when unset or not a positive integer.
  [[nodiscard]] static std::optional<unsigned> threads_from_env();

  /// The worker count a pool built with `requested` would use (0 = default).
  [[nodiscard]] static unsigned resolve_thread_count(unsigned requested) {
    return requested > 0 ? requested : default_thread_count();
  }

 private:
  struct Worker {
    std::deque<Task> queue;
    std::mutex mutex;
  };

  void worker_loop(unsigned index);
  [[nodiscard]] bool try_pop(unsigned index, Task& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_cv_;   // workers sleep here when queues drain
  std::condition_variable idle_cv_;   // wait_idle sleeps here
  std::uint64_t queued_ = 0;          // tasks enqueued, not yet started
  std::uint64_t pending_ = 0;         // tasks enqueued or running
  std::uint64_t next_queue_ = 0;      // round-robin submission cursor
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace mcm::exec
