#include "exec/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace mcm::exec {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_thread_count(threads);
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(state_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  unsigned target = 0;
  {
    std::lock_guard lock(state_mutex_);
    target = static_cast<unsigned>(next_queue_++ % queues_.size());
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->queue.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(unsigned index, Task& out) {
  // Own queue first, newest task (LIFO keeps the working set warm) ...
  {
    Worker& own = *queues_[index];
    std::lock_guard lock(own.mutex);
    if (!own.queue.empty()) {
      out = std::move(own.queue.back());
      own.queue.pop_back();
      return true;
    }
  }
  // ... then steal the oldest task from the nearest busy peer.
  for (std::size_t step = 1; step < queues_.size(); ++step) {
    Worker& victim = *queues_[(index + step) % queues_.size()];
    std::lock_guard lock(victim.mutex);
    if (!victim.queue.empty()) {
      out = std::move(victim.queue.front());
      victim.queue.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned index) {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(state_mutex_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (queued_ == 0) {
        if (stop_) return;
        continue;
      }
      // Claim a unit of queued work before touching the deques, so a
      // concurrent waker never over-notifies past the available tasks.
      --queued_;
    }
    if (!try_pop(index, task)) {
      // Lost the race for the claimed task (another worker drained the
      // deque between our claim and pop); return the claim.
      std::lock_guard lock(state_mutex_);
      ++queued_;
      continue;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(state_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(state_mutex_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(state_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_batch(std::vector<Task> tasks) {
  for (auto& t : tasks) submit(std::move(t));
  wait_idle();
}

std::optional<unsigned> ThreadPool::threads_from_env() {
  const char* env = std::getenv("MCM_THREADS");
  if (env == nullptr || *env == '\0') return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return std::nullopt;
  return static_cast<unsigned>(v);
}

unsigned ThreadPool::default_thread_count() {
  if (const auto env = threads_from_env()) return *env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace mcm::exec
